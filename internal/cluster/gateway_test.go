package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
	"unsafe"

	"parascope/internal/server"
)

var bg = context.Background()

// testBackend is one in-process pedd node: a durable Manager behind
// real HTTP listeners for both the serving and the ops mux, so the
// gateway probes and proxies exactly as it would in production.
type testBackend struct {
	dir   string
	mgr   *server.Manager
	ready *server.Readiness
	api   *httptest.Server
	ops   *httptest.Server
}

func newTestBackend(t *testing.T) *testBackend {
	t.Helper()
	dir := t.TempDir()
	m := server.NewManager(server.Config{CacheSize: 8, DataDir: dir, Fsync: server.FsyncAlways})
	t.Cleanup(m.Shutdown)
	ready := &server.Readiness{}
	b := &testBackend{
		dir:   dir,
		mgr:   m,
		ready: ready,
		api:   httptest.NewServer(server.NewWith(m, server.Options{Ready: ready})),
		ops:   httptest.NewServer(server.OpsHandler(m.Metrics(), ready)),
	}
	t.Cleanup(b.kill)
	return b
}

func (b *testBackend) backend() Backend {
	return Backend{Addr: b.api.URL, OpsAddr: b.ops.URL, DataDir: b.dir}
}

// kill closes both listeners without shutting the manager down — the
// process-death analog for in-process tests: journals stay on disk,
// nothing answers the network. Idempotent so t.Cleanup can re-run it.
func (b *testBackend) kill() {
	if b.api != nil {
		b.api.Close()
		b.ops.Close()
		b.api, b.ops = nil, nil
	}
}

// sessions returns the IDs currently live on this backend.
func (b *testBackend) sessions() map[string]bool {
	out := map[string]bool{}
	for _, info := range b.mgr.List(bg) {
		out[info.ID] = true
	}
	return out
}

// newTestGateway wires a gateway over the given backends with probe
// timing fast enough for tests, started and serving on a real listener.
func newTestGateway(t *testing.T, cfg Config, backends ...*testBackend) (*Gateway, *httptest.Server) {
	t.Helper()
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.backend())
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 20 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.UpAfter == 0 {
		cfg.UpAfter = 1
	}
	if cfg.DownAfter == 0 {
		cfg.DownAfter = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	g := NewGateway(cfg)
	g.Start()
	ts := httptest.NewServer(g)
	t.Cleanup(func() {
		ts.Close()
		g.Stop()
	})
	return g, ts
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// waitGatewayReady polls the gateway's /readyz until it answers 200.
func waitGatewayReady(t *testing.T, base string) {
	t.Helper()
	waitFor(t, 5*time.Second, "gateway /readyz", func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
}

func mustCmd(t *testing.T, cl *server.Client, id, line string) string {
	t.Helper()
	resp, err := cl.Cmd(bg, id, line)
	if err != nil {
		t.Fatalf("cmd %q on %s: %v", line, id, err)
	}
	return resp.Output
}

// TestGatewayEndToEnd drives the full serving surface through a real
// gateway over three real backends: opens spread across the ring,
// session commands route by ID, the list merges the fleet, and the
// scrape shows bounded, session-ID-free series for all of it.
func TestGatewayEndToEnd(t *testing.T) {
	b1, b2, b3 := newTestBackend(t), newTestBackend(t), newTestBackend(t)
	g, ts := newTestGateway(t, Config{}, b1, b2, b3)
	waitGatewayReady(t, ts.URL)

	cl := &server.Client{Base: ts.URL}
	idRe := regexp.MustCompile(`^s[0-9a-f]{12}$`)
	var ids []string
	for i := 0; i < 8; i++ {
		resp, err := cl.Open(bg, server.OpenRequest{Workload: "direct"})
		if err != nil {
			t.Fatalf("open %d via gateway: %v", i, err)
		}
		if !idRe.MatchString(resp.ID) {
			t.Fatalf("gateway-minted ID %q does not match %v", resp.ID, idRe)
		}
		ids = append(ids, resp.ID)
	}

	// Session-scoped requests route to wherever the ring put the session.
	for _, id := range ids {
		if out := mustCmd(t, cl, id, "loops"); !strings.Contains(out, "do") {
			t.Fatalf("loops on %s: unexpected output %q", id, out)
		}
		st, err := cl.Status(bg, id)
		if err != nil || st.ID != id {
			t.Fatalf("status %s via gateway: %+v, %v", id, st, err)
		}
	}

	// The merged list shows the whole fleet.
	infos, err := cl.List(bg)
	if err != nil {
		t.Fatalf("list via gateway: %v", err)
	}
	if len(infos) != len(ids) {
		t.Fatalf("gateway list: %d sessions, want %d", len(infos), len(ids))
	}

	// The ring actually spread the sessions (8 keys all hashing to one
	// of three nodes has odds under 0.1%).
	nonEmpty := 0
	for _, b := range []*testBackend{b1, b2, b3} {
		if len(b.sessions()) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("all %d sessions landed on one backend; ring distribution broken", len(ids))
	}

	// DELETE proxies too, and the fleet view shrinks.
	if err := cl.CloseSession(bg, ids[0]); err != nil {
		t.Fatalf("close %s via gateway: %v", ids[0], err)
	}
	infos, err = cl.List(bg)
	if err != nil || len(infos) != len(ids)-1 {
		t.Fatalf("list after close: %d sessions (%v), want %d", len(infos), err, len(ids)-1)
	}

	// Import is node-internal: the gateway refuses to expose it.
	resp, err := http.Post(ts.URL+"/v1/sessions/import?id=x", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /v1/sessions/import via gateway: %d, want 404", resp.StatusCode)
	}

	// Scrape: per-backend health, ring size, routed requests — and no
	// session IDs leaking into labels.
	expo := scrapeGateway(t, g)
	for _, b := range []*testBackend{b1, b2, b3} {
		want := fmt.Sprintf("pedgw_backend_up{backend=%q} 1", b.api.URL)
		if !strings.Contains(expo, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
	if !strings.Contains(expo, "pedgw_ring_backends 3") {
		t.Error("scrape missing pedgw_ring_backends 3")
	}
	for _, family := range []string{
		"pedgw_http_requests_total", "pedgw_http_request_seconds_bucket",
		"pedgw_proxy_requests_total", "pedgw_proxy_seconds_bucket",
	} {
		if !strings.Contains(expo, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	for _, id := range ids {
		if strings.Contains(expo, id) {
			t.Fatalf("session ID %s leaked into the metrics exposition (unbounded label cardinality)", id)
		}
	}
}

// TestGatewayMetricsLint reflects over the gateway mux and fails if
// any pattern was registered without going through Gateway.handle —
// the same lint the pedd server enforces, so no route escapes the
// route/status/latency instrumentation.
func TestGatewayMetricsLint(t *testing.T) {
	g := NewGateway(Config{})
	got := muxPatterns(t, g.mux)
	want := g.Routes()
	sort.Strings(got)
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mux patterns and instrumented routes diverge:\n  mux:    %v\n  routes: %v\n"+
			"every route must be registered through Gateway.handle so it is counted, timed, and logged",
			got, want)
	}
	if len(got) == 0 {
		t.Fatal("no patterns found in mux; reflection walk is broken")
	}
}

// TestGatewayExplicitID: a client-chosen session ID passes through the
// gateway unchanged, and reopening it is a 409 — not a silent remint.
func TestGatewayExplicitID(t *testing.T) {
	b := newTestBackend(t)
	_, ts := newTestGateway(t, Config{}, b)
	waitGatewayReady(t, ts.URL)

	cl := &server.Client{Base: ts.URL}
	resp, err := cl.Open(bg, server.OpenRequest{Workload: "direct", ID: "pick-me"})
	if err != nil || resp.ID != "pick-me" {
		t.Fatalf("explicit-ID open: %+v, %v", resp, err)
	}
	_, err = cl.Open(bg, server.OpenRequest{Workload: "direct", ID: "pick-me"})
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("duplicate explicit ID: %v, want 409", err)
	}
}

// TestGatewayDraining: the drain bit flips /readyz to 503 and refuses
// new API work with 503 + Retry-After while /healthz stays 200 — the
// contract the SIGTERM path relies on for connection-draining restarts.
func TestGatewayDraining(t *testing.T) {
	b := newTestBackend(t)
	g, ts := newTestGateway(t, Config{}, b)
	waitGatewayReady(t, ts.URL)

	g.SetDraining(true)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"workload":"direct"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining open: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz: %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	g.SetDraining(false)
	waitGatewayReady(t, ts.URL)
}

// TestGatewayNoReadyBackends: with nothing alive behind it, the
// gateway says so — 503 + Retry-After, not a hang or a 502 storm.
func TestGatewayNoReadyBackends(t *testing.T) {
	dead := deadListenerURL(t)
	g, ts := newTestGateway(t, Config{Backends: []Backend{{Addr: dead}}})
	_ = g
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz with no backends up: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"workload":"direct"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open with no backends up: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// deadListenerURL returns a URL whose port was just closed, so every
// dial fails fast with connection refused.
func deadListenerURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

// TestGatewayBreakerTripsOnDeadServingPort: a backend whose ops
// listener answers ready but whose serving port refuses connections
// trips its breaker after the threshold; further requests are refused
// locally with 503 instead of dialing a dead socket.
func TestGatewayBreakerTripsOnDeadServingPort(t *testing.T) {
	stubOps := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer stubOps.Close()
	dead := deadListenerURL(t)
	g, ts := newTestGateway(t, Config{
		Backends:         []Backend{{Addr: dead, OpsAddr: stubOps.URL}},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		ProxyRetries:     -1,
	})
	waitGatewayReady(t, ts.URL) // ops stub answers, so the ring forms

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{"workload":"direct"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := post(); resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("transport failure %d: %d, want 502", i, resp.StatusCode)
		}
	}
	resp := post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("with breaker open: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker-open 503 without Retry-After")
	}
	if !strings.Contains(scrapeGateway(t, g), fmt.Sprintf("pedgw_backend_breaker_state{backend=%q} 2", dead)) {
		t.Error("scrape does not show the breaker open (state 2)")
	}
}

// TestGatewayFailover is the in-process half of the tentpole proof: a
// backend dies with live, mutated sessions; the gateway notices, adopts
// the sessions from the dead node's journals onto surviving ring
// owners, and every acknowledged mutation is served back byte-for-byte
// through the same gateway URL the client was already using.
func TestGatewayFailover(t *testing.T) {
	b1, b2, b3 := newTestBackend(t), newTestBackend(t), newTestBackend(t)
	g, ts := newTestGateway(t, Config{}, b1, b2, b3)
	waitGatewayReady(t, ts.URL)

	cl := &server.Client{Base: ts.URL}
	want := map[string]string{} // id -> acknowledged save output
	for i := 0; i < 6; i++ {
		resp, err := cl.Open(bg, server.OpenRequest{Workload: "direct"})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		mustCmd(t, cl, resp.ID, "loop 1")
		mustCmd(t, cl, resp.ID, "apply parallelize 1")
		out := mustCmd(t, cl, resp.ID, "save")
		if !strings.Contains(out, "doall") {
			t.Fatalf("parallelize not acknowledged in save output:\n%s", out)
		}
		want[resp.ID] = out
	}

	// Pick a victim that actually holds sessions.
	victim := b1
	for _, b := range []*testBackend{b1, b2, b3} {
		if len(b.sessions()) > 0 {
			victim = b
			break
		}
	}
	lost := victim.sessions()
	if len(lost) == 0 {
		t.Fatal("no backend holds sessions; test setup broken")
	}
	t.Logf("killing %s holding %d sessions", victim.api.URL, len(lost))
	victim.kill()

	// Every acknowledged mutation must come back byte-identical through
	// the gateway once failover adopts the journals.
	for id, out := range want {
		id, out := id, out
		waitFor(t, 15*time.Second, "session "+id+" to serve after failover", func() bool {
			resp, err := cl.Cmd(bg, id, "save")
			return err == nil && resp.Output == out
		})
	}

	// The adoption is visible in the metrics and on disk.
	expo := scrapeGateway(t, g)
	if !strings.Contains(expo, "pedgw_failovers_total") {
		t.Error("scrape missing pedgw_failovers_total")
	}
	vals := gatewayPromValues(t, expo)
	if vals["pedgw_failover_sessions_total"] < float64(len(lost)) {
		t.Errorf("pedgw_failover_sessions_total = %v, want >= %d", vals["pedgw_failover_sessions_total"], len(lost))
	}
	for id := range lost {
		if _, err := os.Stat(victim.dir + "/" + id + ".wal.migrated"); err != nil {
			t.Errorf("adopted journal for %s not retired: %v", id, err)
		}
		if _, err := os.Stat(victim.dir + "/" + id + ".moved"); err != nil {
			t.Errorf("no tombstone left for %s in the dead node's datadir: %v", id, err)
		}
	}
}

// TestGatewayDiscoverySweep: a session opened directly on a node that
// is not its ring owner (out-of-band, no gateway involved) is still
// reachable through the gateway — the 404 sweep finds it and caches
// the detour.
func TestGatewayDiscoverySweep(t *testing.T) {
	b1, b2 := newTestBackend(t), newTestBackend(t)
	g, ts := newTestGateway(t, Config{}, b1, b2)
	waitGatewayReady(t, ts.URL)

	// Find an ID the ring assigns to b1, then plant it on b2.
	ring := NewRing(0, []string{b1.api.URL, b2.api.URL})
	id := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("stray%04d", i)
		if ring.Owner(cand) == b1.api.URL {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no candidate ID hashed to b1")
	}
	direct := &server.Client{Base: b2.api.URL}
	if _, err := direct.Open(bg, server.OpenRequest{Workload: "direct", ID: id}); err != nil {
		t.Fatalf("out-of-band open on b2: %v", err)
	}

	cl := &server.Client{Base: ts.URL}
	st, err := cl.Status(bg, id)
	if err != nil || st.ID != id {
		t.Fatalf("status of off-owner session via gateway: %+v, %v", st, err)
	}
	if got := gatewayPromValues(t, scrapeGateway(t, g))["pedgw_discoveries_total"]; got < 1 {
		t.Errorf("pedgw_discoveries_total = %v, want >= 1", got)
	}
}

// TestGatewayReloadRebalanceAndDrain: scaling the fleet via Reload
// converges the placement to the new ring in both directions — keys
// move onto a joining backend, and a removed-but-alive backend is
// drained empty before the gateway forgets it.
func TestGatewayReloadRebalanceAndDrain(t *testing.T) {
	b1, b2 := newTestBackend(t), newTestBackend(t)
	g, ts := newTestGateway(t, Config{}, b1, b2)
	waitGatewayReady(t, ts.URL)

	cl := &server.Client{Base: ts.URL}
	var ids []string
	for i := 0; i < 12; i++ {
		resp, err := cl.Open(bg, server.OpenRequest{Workload: "direct"})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		mustCmd(t, cl, resp.ID, "loop 1")
		mustCmd(t, cl, resp.ID, "apply parallelize 1")
		ids = append(ids, resp.ID)
	}

	// Scale out: add b3. Placement must converge to the 3-node ring.
	b3 := newTestBackend(t)
	g.Reload([]Backend{b1.backend(), b2.backend(), b3.backend()})
	ring3 := NewRing(0, []string{b1.api.URL, b2.api.URL, b3.api.URL})
	locate := func() map[string]string {
		out := map[string]string{}
		for _, b := range []*testBackend{b1, b2, b3} {
			for id := range b.sessions() {
				out[id] = b.api.URL
			}
		}
		return out
	}
	waitFor(t, 15*time.Second, "placement to converge to the 3-node ring", func() bool {
		loc := locate()
		for _, id := range ids {
			if loc[id] != ring3.Owner(id) {
				return false
			}
		}
		return true
	})
	if len(b3.sessions()) == 0 {
		t.Fatal("scale-out moved nothing onto the new backend")
	}

	// Scale in: drop b3 while it is alive. Its sessions must drain off
	// before the gateway stops routing to it.
	g.Reload([]Backend{b1.backend(), b2.backend()})
	ring2 := NewRing(0, []string{b1.api.URL, b2.api.URL})
	waitFor(t, 15*time.Second, "removed backend to drain", func() bool {
		if len(b3.sessions()) != 0 {
			return false
		}
		loc := locate()
		for _, id := range ids {
			if loc[id] != ring2.Owner(id) {
				return false
			}
		}
		return true
	})

	// Sessions still answer through the gateway after both moves, state
	// intact (the parallelize annotation survived two migrations).
	for _, id := range ids {
		if out := mustCmd(t, cl, id, "save"); !strings.Contains(out, "doall") {
			t.Fatalf("session %s lost its mutation across rebalance: %s", id, out)
		}
	}
	if got := gatewayPromValues(t, scrapeGateway(t, g))["pedgw_migrations_total"]; got < 1 {
		t.Errorf("pedgw_migrations_total = %v, want >= 1", got)
	}
}

// scrapeGateway renders the gateway's registry as GET /metrics would.
func scrapeGateway(t *testing.T, g *Gateway) string {
	t.Helper()
	var b strings.Builder
	if err := g.metrics.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return b.String()
}

// gatewayPromValues parses an exposition into name{labels} -> value.
func gatewayPromValues(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparsable exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// muxPatterns enumerates every pattern registered on a ServeMux by
// reflecting over its routing index — duplicated from the server
// package's metrics lint because it must stay unexported there.
func muxPatterns(t *testing.T, mux *http.ServeMux) []string {
	t.Helper()
	mv := reflect.ValueOf(mux).Elem()
	idx := mv.FieldByName("index")
	if !idx.IsValid() {
		t.Fatal("http.ServeMux has no index field; update muxPatterns for this Go version")
	}
	seen := map[string]bool{}
	var out []string
	collect := func(pv reflect.Value) {
		if pv.Kind() != reflect.Ptr || pv.IsNil() {
			return
		}
		sv := pv.Elem().FieldByName("str")
		if !sv.IsValid() || !sv.CanAddr() {
			t.Fatal("http pattern has no str field; update muxPatterns for this Go version")
		}
		s := *(*string)(unsafe.Pointer(sv.UnsafeAddr()))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	segs := idx.FieldByName("segments")
	for it := segs.MapRange(); it.Next(); {
		lst := it.Value()
		for i := 0; i < lst.Len(); i++ {
			collect(lst.Index(i))
		}
	}
	multis := idx.FieldByName("multis")
	for i := 0; i < multis.Len(); i++ {
		collect(multis.Index(i))
	}
	return out
}
