package cluster

import (
	"context"
	"fmt"
	"net/url"
	"os"
	"strings"
	"sync"
	"time"

	"parascope/internal/server"
)

// Backend describes one pedd node the gateway can route to.
type Backend struct {
	// Addr is the node's serving base URL (http://host:port).
	Addr string
	// OpsAddr is the node's ops listener base URL; health probes go
	// there so a serving port wedged under load still answers. Empty
	// falls back to Addr (pedd mounts /readyz on both).
	OpsAddr string
	// DataDir is the node's journal directory as visible to the
	// gateway. Needed only for failover: when the node dies, the
	// gateway adopts its sessions from these journals. Empty means the
	// storage is not shared — failover is impossible and says so.
	DataDir string
}

// probeBase is where health probes go.
func (b Backend) probeBase() string {
	if b.OpsAddr != "" {
		return b.OpsAddr
	}
	return b.Addr
}

// ParseBackends parses a -backends spec: comma-separated entries, each
// `addr[|opsaddr[|datadir]]`, or `@path` naming a file with one entry
// per line (# comments and blank lines ignored) so fleets reload via
// SIGHUP without restarting the gateway.
func ParseBackends(spec string) ([]Backend, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("backends: empty spec")
	}
	var entries []string
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, fmt.Errorf("backends: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			entries = append(entries, line)
		}
	} else {
		for _, e := range strings.Split(spec, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("backends: spec names no backends")
	}
	seen := map[string]bool{}
	out := make([]Backend, 0, len(entries))
	for _, e := range entries {
		b, err := parseBackendEntry(e)
		if err != nil {
			return nil, err
		}
		if seen[b.Addr] {
			return nil, fmt.Errorf("backends: duplicate backend %s", b.Addr)
		}
		seen[b.Addr] = true
		out = append(out, b)
	}
	return out, nil
}

func parseBackendEntry(entry string) (Backend, error) {
	parts := strings.Split(entry, "|")
	if len(parts) > 3 {
		return Backend{}, fmt.Errorf("backends: %q: want addr[|opsaddr[|datadir]]", entry)
	}
	var b Backend
	var err error
	if b.Addr, err = normalizeBase(parts[0]); err != nil {
		return Backend{}, fmt.Errorf("backends: %q: %w", entry, err)
	}
	if len(parts) > 1 && strings.TrimSpace(parts[1]) != "" {
		if b.OpsAddr, err = normalizeBase(parts[1]); err != nil {
			return Backend{}, fmt.Errorf("backends: %q: %w", entry, err)
		}
	}
	if len(parts) > 2 {
		b.DataDir = strings.TrimSpace(parts[2])
	}
	return b, nil
}

// normalizeBase validates a base URL and strips the trailing slash so
// addresses compare and concatenate consistently everywhere.
func normalizeBase(s string) (string, error) {
	s = strings.TrimRight(strings.TrimSpace(s), "/")
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("base URL %q must be http or https", s)
	}
	if u.Host == "" {
		return "", fmt.Errorf("base URL %q has no host", s)
	}
	return s, nil
}

// backendState is one backend's runtime: its clients, its circuit
// breaker, and its hysteresis-filtered health.
type backendState struct {
	be      Backend
	api     *server.Client // typed control-plane calls (list, migrate, import)
	ops     *server.Client // /readyz probes against the ops listener
	breaker *Breaker

	mu      sync.Mutex
	ready   bool // on the ring
	okRun   int  // consecutive successful probes
	failRun int  // consecutive failed probes
}

func newBackendState(be Backend, cfg Config) *backendState {
	return &backendState{
		be: be,
		// Control-plane calls retry inside the client only for
		// backpressure; a duplicated import would 409 and misreport.
		api: &server.Client{Base: be.Addr, MaxRetries: -1, Timeout: cfg.migrateTimeout()},
		ops: &server.Client{Base: be.probeBase(), MaxRetries: -1, Timeout: cfg.probeTimeout()},
		breaker: &Breaker{
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		},
	}
}

func (b *backendState) isReady() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ready
}

// observe folds one probe result through the hysteresis counters and
// reports whether the ready bit flipped. UpAfter consecutive successes
// bring a backend onto the ring; DownAfter consecutive failures take
// it off — so one dropped probe (GC pause, packet loss) does not
// trigger a fleet-wide rebalance, and one lucky probe does not route
// traffic at a flapping node.
func (b *backendState) observe(ok bool, upAfter, downAfter int) (flipped, nowReady bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.okRun++
		b.failRun = 0
		if !b.ready && b.okRun >= upAfter {
			b.ready = true
			return true, true
		}
	} else {
		b.failRun++
		b.okRun = 0
		if b.ready && b.failRun >= downAfter {
			b.ready = false
			return true, false
		}
	}
	return false, b.ready
}

// probeLoop drives periodic /readyz probes until stop closes. The
// first sweep runs immediately so a freshly started gateway builds its
// ring within UpAfter probe intervals, not UpAfter+1.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.probeInterval())
	defer t.Stop()
	for {
		g.probeSweep()
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
	}
}

// probeSweep probes every backend concurrently and applies the results.
func (g *Gateway) probeSweep() {
	g.mu.Lock()
	states := make([]*backendState, 0, len(g.backends))
	for _, b := range g.backends {
		states = append(states, b)
	}
	g.mu.Unlock()
	var wg sync.WaitGroup
	for _, b := range states {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.probeTimeout())
			err := b.ops.Ready(ctx)
			cancel()
			g.observeProbe(b, err == nil)
		}(b)
	}
	wg.Wait()
}

// observeProbe applies one probe result: hysteresis, gauges, and — on
// a transition — a ring rebuild plus the follow-up work (rebalance
// onto a recovered node, failover off a dead one).
func (g *Gateway) observeProbe(b *backendState, ok bool) {
	flipped, nowReady := b.observe(ok, g.cfg.upAfter(), g.cfg.downAfter())
	var up int64
	if nowReady {
		up = 1
	}
	g.metrics.BackendUp.With(b.be.Addr).Set(up)
	g.metrics.BreakerState.With(b.be.Addr).Set(int64(b.breaker.State()))
	if !flipped {
		return
	}
	g.mu.Lock()
	// The backend may have been dropped by a concurrent reload; only
	// still-configured backends rebuild the ring.
	_, present := g.backends[b.be.Addr]
	if present {
		g.rebuildRingLocked()
	}
	g.mu.Unlock()
	if !present {
		return
	}
	if nowReady {
		g.logf("pedgw: backend %s up, rebalancing", b.be.Addr)
		g.enqueue(gwEvent{kind: evRebalance})
	} else {
		g.logf("pedgw: backend %s down, failing over", b.be.Addr)
		g.enqueue(gwEvent{kind: evFailover, backend: b})
	}
}
