// Package cluster is the multi-node layer of pedd: a stateless gateway
// (cmd/pedgw) that consistent-hashes session IDs across a fleet of
// pedd backends, probes their readiness, trips per-backend circuit
// breakers, and drives session migration — rebalancing on ring changes
// and failing over from a dead node's journals when the fleet shares
// storage. The gateway holds no session state of its own: every
// routing decision is recomputable from the session ID and the set of
// ready backends, so gateways restart freely and can run in parallel.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is how many virtual nodes each backend contributes
// to the ring. More replicas smooth the key distribution; 64 keeps a
// 3-node fleet within a few percent of even at negligible memory.
const defaultReplicas = 64

// Ring is an immutable consistent-hash ring over backend addresses.
// Sessions hash onto the first virtual node clockwise from their ID,
// so adding or removing one backend only moves the keys that backend
// gains or loses — the property that keeps rebalance migrations
// proportional to the change, not the fleet.
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with replicas virtual nodes per member
// (replicas <= 0 takes the default). An empty member list yields an
// empty ring whose Owner is always "".
func NewRing(replicas int, members []string) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, replicas*len(members))}
	for _, m := range members {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member so rings built
		// from the same set agree regardless of input order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner maps a key (session ID) to the backend that owns it, or ""
// for an empty ring. Deterministic: every gateway with the same ready
// set routes identically.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members lists the distinct backends on the ring, sorted.
func (r *Ring) Members() []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range r.points {
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	sort.Strings(out)
	return out
}

// ringHash is FNV-1a/64 — fast, dependency-free, and plenty uniform
// for ring placement (keys are short random session IDs).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
