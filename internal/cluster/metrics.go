package cluster

import (
	"net/http"
	"net/http/pprof"
	"time"

	"parascope/internal/server"
)

// Metrics is the gateway's registry — pedgw_-prefixed families on the
// same Registry machinery (and the same bucket schedule) as pedd's, so
// the whole fleet scrapes identically. Label cardinality is bounded by
// construction: backends are configured addresses, routes are mux
// patterns, codes are status classes. Session IDs are unbounded and
// never label anything.
type Metrics struct {
	*server.Registry

	// Gateway HTTP edge.
	HTTPRequests *server.CounterVec   // route, method, code
	HTTPLatency  *server.HistogramVec // route
	HTTPInflight *server.Gauge

	// Per-backend health and proxying.
	BackendUp     *server.GaugeVec     // backend: 1 ready, 0 not
	BreakerState  *server.GaugeVec     // backend: 0 closed, 1 half-open, 2 open
	ProxyRequests *server.CounterVec   // backend, code
	ProxyLatency  *server.HistogramVec // backend
	ProxyRetries  *server.Counter

	// Ring and session mobility.
	RingBackends     *server.Gauge
	RingChanges      *server.Counter
	Failovers        *server.Counter // down-transitions that triggered a journal sweep
	FailoverSessions *server.Counter // sessions adopted from a dead node's journals
	FailoverFailed   *server.Counter // journals that could not be failed over
	Rebalances       *server.Counter // rebalance sweeps run
	Migrations       *server.Counter // sessions moved by rebalance sweeps
	MigrationsFailed *server.Counter
	Discoveries      *server.Counter // sessions found by the 404 fallback sweep
	RedirectsServed  *server.Counter // backend 421s followed on the client's behalf
}

// NewMetrics builds the gateway registry.
func NewMetrics() *Metrics {
	buckets := server.TimeBuckets()
	m := &Metrics{Registry: server.NewRegistry()}
	m.HTTPRequests = m.CounterVec("pedgw_http_requests_total",
		"Gateway HTTP requests by mux route, method, and status class.", "route", "method", "code")
	m.HTTPLatency = m.HistogramVec("pedgw_http_request_seconds",
		"End-to-end gateway request latency by mux route.", buckets, "route")
	m.HTTPInflight = m.Gauge("pedgw_http_inflight",
		"Gateway requests currently being served.")
	m.BackendUp = m.GaugeVec("pedgw_backend_up",
		"Backend readiness after hysteresis: 1 = on the ring, 0 = not.", "backend")
	m.BreakerState = m.GaugeVec("pedgw_backend_breaker_state",
		"Circuit breaker position per backend: 0 closed, 1 half-open, 2 open.", "backend")
	m.ProxyRequests = m.CounterVec("pedgw_proxy_requests_total",
		"Requests proxied to backends by backend and status class (code 'error' = transport failure).", "backend", "code")
	m.ProxyLatency = m.HistogramVec("pedgw_proxy_seconds",
		"Proxied request latency by backend.", buckets, "backend")
	m.ProxyRetries = m.Counter("pedgw_proxy_retries_total",
		"Proxy attempts retried after a transport failure.")
	m.RingBackends = m.Gauge("pedgw_ring_backends",
		"Backends currently on the hash ring (up and accepting).")
	m.RingChanges = m.Counter("pedgw_ring_changes_total",
		"Times the ring was rebuilt (health transition or reload).")
	m.Failovers = m.Counter("pedgw_failovers_total",
		"Backend deaths that triggered a shared-storage journal sweep.")
	m.FailoverSessions = m.Counter("pedgw_failover_sessions_total",
		"Sessions adopted onto new owners from a dead node's journals.")
	m.FailoverFailed = m.Counter("pedgw_failover_failed_total",
		"Dead-node journals that could not be failed over (left in place).")
	m.Rebalances = m.Counter("pedgw_rebalances_total",
		"Rebalance sweeps run after ring changes.")
	m.Migrations = m.Counter("pedgw_migrations_total",
		"Sessions migrated to their ring owner by rebalance sweeps.")
	m.MigrationsFailed = m.Counter("pedgw_migrations_failed_total",
		"Rebalance migrations that failed (session stayed put).")
	m.Discoveries = m.Counter("pedgw_discoveries_total",
		"Sessions located by the 404 fallback sweep (routing override cached).")
	m.RedirectsServed = m.Counter("pedgw_redirects_served_total",
		"Backend 421 redirects the gateway followed on the client's behalf.")
	return m
}

// ObserveHTTP records one gateway-served request.
func (m *Metrics) ObserveHTTP(route, method string, status int, d time.Duration) {
	m.HTTPRequests.With(route, method, server.StatusClass(status)).Inc()
	m.HTTPLatency.With(route).Observe(d.Seconds())
}

// ObserveProxy records one proxied exchange; status 0 means a
// transport failure (labeled "error", a bounded pseudo-class).
func (m *Metrics) ObserveProxy(backend string, status int, d time.Duration) {
	code := "error"
	if status > 0 {
		code = server.StatusClass(status)
	}
	m.ProxyRequests.With(backend, code).Inc()
	m.ProxyLatency.With(backend).Observe(d.Seconds())
}

// OpsHandler mounts the gateway's operational surface — /metrics,
// /healthz, /readyz, pprof — for pedgw -opsaddr, separate from the
// proxy port so scraping never contends with routed traffic.
func (g *Gateway) OpsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", g.metrics.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
