package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parascope/internal/server"
)

// Gateway tuning defaults; override via Config.
const (
	// DefaultProbeInterval is how often each backend's /readyz is hit.
	DefaultProbeInterval = 1 * time.Second
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 1 * time.Second
	// DefaultUpAfter / DefaultDownAfter are the hysteresis widths: how
	// many consecutive probe results flip a backend's ready bit.
	DefaultUpAfter   = 2
	DefaultDownAfter = 2
	// DefaultProxyTimeout bounds one proxied exchange end to end.
	DefaultProxyTimeout = 30 * time.Second
	// DefaultProxyRetries is the transport-failure retry budget for
	// idempotent proxied requests.
	DefaultProxyRetries = 2
	// DefaultMigrateTimeout bounds one control-plane migration call
	// (export + ship + replay of a whole journal).
	DefaultMigrateTimeout = 30 * time.Second
	// defaultMaxBodyBytes caps proxied request bodies; journal streams
	// never pass through the gateway's serving port (import is
	// node-internal), so command-sized bodies are the ceiling.
	defaultMaxBodyBytes = 1 << 20
	// proxyMaxHops bounds 421-redirect following inside the proxy.
	proxyMaxHops = 3
	// openMintRetries is how many fresh IDs an open tries when a mint
	// collides (409) before giving up.
	openMintRetries = 4
	// retryAfterSeconds is the Retry-After hint on gateway 503s.
	retryAfterSeconds = 1
)

// Config tunes the gateway.
type Config struct {
	// Backends is the initial fleet (see ParseBackends).
	Backends []Backend
	// Replicas is the virtual-node count per backend (0 = default).
	Replicas int
	// ProbeInterval / ProbeTimeout shape health probing.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// UpAfter / DownAfter are the hysteresis widths (0 = defaults).
	UpAfter   int
	DownAfter int
	// BreakerThreshold / BreakerCooldown tune the per-backend circuit
	// breakers (0 = Breaker defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProxyTimeout bounds one proxied exchange; ProxyRetries is the
	// transport-failure budget for idempotent requests (0 = defaults,
	// negative ProxyRetries = never retry).
	ProxyTimeout time.Duration
	ProxyRetries int
	// MigrateTimeout bounds one rebalance/failover operation.
	MigrateTimeout time.Duration
	// MaxBodyBytes caps proxied request bodies (0 = default 1 MiB).
	MaxBodyBytes int64
	// AccessLog, when set, gets one structured line per request.
	AccessLog *slog.Logger
	// Metrics receives gateway counters (nil = a fresh registry).
	Metrics *Metrics
	// Logf receives operational log lines (nil = log.Printf).
	Logf func(format string, args ...interface{})
}

func (c Config) probeInterval() time.Duration { return defDur(c.ProbeInterval, DefaultProbeInterval) }
func (c Config) probeTimeout() time.Duration  { return defDur(c.ProbeTimeout, DefaultProbeTimeout) }
func (c Config) proxyTimeout() time.Duration  { return defDur(c.ProxyTimeout, DefaultProxyTimeout) }
func (c Config) migrateTimeout() time.Duration {
	return defDur(c.MigrateTimeout, DefaultMigrateTimeout)
}
func (c Config) upAfter() int   { return defInt(c.UpAfter, DefaultUpAfter) }
func (c Config) downAfter() int { return defInt(c.DownAfter, DefaultDownAfter) }
func (c Config) proxyRetries() int {
	if c.ProxyRetries < 0 {
		return 0
	}
	return defInt(c.ProxyRetries, DefaultProxyRetries)
}
func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return defaultMaxBodyBytes
}

func defDur(v, d time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return d
}

func defInt(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

// Orchestrator event kinds.
const (
	evRebalance = "rebalance" // a backend joined the ring: move its keys to it
	evFailover  = "failover"  // a backend died: adopt its journals elsewhere
	evDrain     = "drain"     // a backend was removed from config: move its sessions off
)

type gwEvent struct {
	kind    string
	backend *backendState
}

// Gateway is the stateless routing front of a pedd fleet: it
// consistent-hashes session IDs across the ready backends, proxies
// /v1/* with per-backend circuit breakers, probes health, and drives
// session migration on ring changes and backend death. It holds no
// session state — every routing decision recomputes from the session
// ID and the ready set, so gateways restart freely.
type Gateway struct {
	cfg      Config
	metrics  *Metrics
	mux      *http.ServeMux
	routes   []string
	client   *http.Client
	draining atomic.Bool

	mu       sync.Mutex
	backends map[string]*backendState // by Addr
	ring     *Ring
	// override routes sessions found off their ring owner (a 421
	// followed, a 404 sweep hit) until the ring catches up; entries
	// self-invalidate when the cached backend stops answering for them.
	override map[string]string // session ID -> backend Addr

	events chan gwEvent
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewGateway builds a gateway over cfg.Backends. Call Start to begin
// probing (the ring is empty — and every route 503s — until probes
// mark backends ready).
func NewGateway(cfg Config) *Gateway {
	g := &Gateway{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		mux:      http.NewServeMux(),
		client:   &http.Client{},
		backends: map[string]*backendState{},
		ring:     NewRing(cfg.Replicas, nil),
		override: map[string]string{},
		events:   make(chan gwEvent, 64),
		stop:     make(chan struct{}),
	}
	if g.metrics == nil {
		g.metrics = NewMetrics()
	}
	for _, be := range cfg.Backends {
		g.backends[be.Addr] = newBackendState(be, cfg)
		g.metrics.BackendUp.With(be.Addr).Set(0)
		g.metrics.BreakerState.With(be.Addr).Set(0)
	}
	g.handle("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	g.handle("GET /readyz", g.handleReadyz)
	g.handle("POST /v1/sessions", g.handleOpen)
	g.handle("GET /v1/sessions", g.handleList)
	// Import is node-internal (migration and failover ship journals
	// directly between pedd nodes); the literal pattern outranks {id},
	// so it never proxies as a session named "import".
	g.handle("POST /v1/sessions/import", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			errors.New("session import is node-internal; the gateway does not expose it"))
	})
	g.handle("/v1/sessions/{id}", g.handleProxy)
	g.handle("/v1/sessions/{id}/{op...}", g.handleProxy)
	return g
}

// Start launches the health prober and the migration orchestrator.
func (g *Gateway) Start() {
	g.wg.Add(2)
	go g.probeLoop()
	go g.orchestrate()
}

// Stop halts the prober and orchestrator and waits for them.
func (g *Gateway) Stop() {
	close(g.stop)
	g.wg.Wait()
}

// SetDraining flips the gateway's drain bit: /readyz answers 503 and
// new requests are refused with 503 + Retry-After while in-flight ones
// complete (pair with http.Server.Shutdown).
func (g *Gateway) SetDraining(v bool) { g.draining.Store(v) }

func (g *Gateway) logf(format string, args ...interface{}) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// handle registers one route through the instrumentation wrapper, as
// in server.Server: the matched pattern feeds the route metric label
// and the access log, and the metrics-lint test reflects over the mux
// to fail anyone who bypasses it.
func (g *Gateway) handle(pattern string, h http.HandlerFunc) {
	g.routes = append(g.routes, pattern)
	g.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if hold, ok := r.Context().Value(routeKey{}).(*routeHolder); ok {
			hold.pattern = r.Pattern
		}
		h(w, r)
	})
}

// Routes lists the registered (instrumented) mux patterns.
func (g *Gateway) Routes() []string {
	out := make([]string, len(g.routes))
	copy(out, g.routes)
	return out
}

type routeKey struct{}

type routeHolder struct{ pattern string }

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.code == 0 {
		rec.code = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

func (rec *statusRecorder) status() int {
	if rec.code == 0 {
		return http.StatusOK
	}
	return rec.code
}

// ServeHTTP assigns the request ID, refuses new work while draining,
// caps the body, routes, and records route/status/latency.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	hold := &routeHolder{}
	ctx := context.WithValue(r.Context(), routeKey{}, hold)
	r = r.WithContext(ctx)
	rec := &statusRecorder{ResponseWriter: w}
	if g.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(rec, http.StatusServiceUnavailable, errors.New("gateway draining"))
		g.finish(rec, r, "draining", start)
		return
	}
	if r.Body != nil {
		r.Body = http.MaxBytesReader(rec, r.Body, g.cfg.maxBodyBytes())
	}
	g.metrics.HTTPInflight.Inc()
	g.mux.ServeHTTP(rec, r)
	g.metrics.HTTPInflight.Dec()
	route := hold.pattern
	if route == "" {
		route = "unmatched"
	}
	g.finish(rec, r, route, start)
}

func (g *Gateway) finish(rec *statusRecorder, r *http.Request, route string, start time.Time) {
	elapsed := time.Since(start)
	g.metrics.ObserveHTTP(route, r.Method, rec.status(), elapsed)
	if lg := g.cfg.AccessLog; lg != nil {
		lg.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("req_id", rec.Header().Get("X-Request-ID")),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status()),
			slog.Duration("dur", elapsed),
		)
	}
}

// handleReadyz: ready means not draining AND able to route somewhere.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	g.mu.Lock()
	n := len(g.ring.Members())
	g.mu.Unlock()
	if n == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no ready backends"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// rebuildRingLocked recomputes the ring from the ready set. Callers
// hold g.mu.
func (g *Gateway) rebuildRingLocked() {
	var members []string
	for addr, b := range g.backends {
		if b.isReady() {
			members = append(members, addr)
		}
	}
	g.ring = NewRing(g.cfg.Replicas, members)
	g.metrics.RingBackends.Set(int64(len(members)))
	g.metrics.RingChanges.Inc()
}

// route picks the backend for a session: a cached override (set when a
// session was found off its ring owner) wins, else the ring owner.
// The second return is the ring owner either way.
func (g *Gateway) route(id string) (addr, owner string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	owner = g.ring.Owner(id)
	if ov, ok := g.override[id]; ok {
		if _, present := g.backends[ov]; present {
			return ov, owner
		}
		delete(g.override, id) // backend dropped from config
	}
	return owner, owner
}

func (g *Gateway) backend(addr string) *backendState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.backends[addr]
}

func (g *Gateway) readyBackends() []*backendState {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*backendState, 0, len(g.backends))
	for _, b := range g.backends {
		if b.isReady() {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].be.Addr < out[j].be.Addr })
	return out
}

func (g *Gateway) setOverride(id, addr string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ring.Owner(id) == addr {
		delete(g.override, id) // the ring already says so
		return
	}
	g.override[id] = addr
}

func (g *Gateway) clearOverride(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.override, id)
}

// mintID mints a session ID: 13 chars of [a-z0-9], safe for journal
// and tombstone filenames (server.validateSessionID's alphabet).
func mintID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "s0000000000000"
	}
	return "s" + hex.EncodeToString(b[:])
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// handleOpen routes a session open. The gateway mints the ID before
// routing — consistent hashing needs the key up front — and injects it
// into the forwarded body; an explicit client ID is honored as-is. A
// minted ID that collides (409) is reminted and rerouted; an explicit
// one passes the 409 through.
func (g *Gateway) handleOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var obj map[string]interface{}
	if err := json.Unmarshal(body, &obj); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("open: %w", err))
		return
	}
	id, _ := obj["id"].(string)
	explicit := id != ""
	reqID := w.Header().Get("X-Request-ID")
	for try := 0; try < openMintRetries; try++ {
		if !explicit {
			id = mintID()
			obj["id"] = id
		}
		payload, err := json.Marshal(obj)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		addr, _ := g.route(id)
		b := g.backend(addr)
		if b == nil {
			g.unavailable(w, "no ready backends")
			return
		}
		resp, err := g.forward(r.Context(), b, http.MethodPost, "/v1/sessions", payload, "application/json", reqID)
		if err != nil {
			g.badGateway(w, b, err)
			return
		}
		if resp.StatusCode == http.StatusConflict && !explicit {
			drain(resp)
			continue // mint again; a fresh ID reroutes by hash
		}
		g.relay(w, resp)
		return
	}
	g.unavailable(w, fmt.Sprintf("could not mint an unused session ID in %d tries", openMintRetries))
}

// handleList fans GET /v1/sessions out to every ready backend and
// merges. A backend that fails mid-sweep is skipped (logged), so one
// slow node cannot blank the fleet listing.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	backends := g.readyBackends()
	var (
		mu  sync.Mutex
		all []server.SessionInfo
		wg  sync.WaitGroup
	)
	for _, b := range backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			infos, err := b.api.List(r.Context())
			if err != nil {
				g.logf("pedgw: list %s: %v", b.be.Addr, err)
				return
			}
			mu.Lock()
			all = append(all, infos...)
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	if all == nil {
		all = []server.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, all)
}

// handleProxy relays one session-scoped request to the session's
// backend: circuit breaker, bounded transport retries (idempotent
// methods only), 421-following with override caching, and a 404
// discovery sweep that re-locates sessions the ring mispredicts
// (e.g. just after a node rejoins).
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	reqID := w.Header().Get("X-Request-ID")
	pathq := r.URL.RequestURI()
	idempotent := r.Method == http.MethodGet || r.Method == http.MethodHead ||
		r.Method == http.MethodDelete || r.Method == http.MethodPut
	addr, owner := g.route(id)
	viaOverride := addr != owner
	swept := false
	hops := 0
	for {
		b := g.backend(addr)
		if b == nil {
			g.unavailable(w, "no ready backends")
			return
		}
		resp, err := g.forwardRetry(r.Context(), b, r.Method, pathq, body, r.Header.Get("Content-Type"), reqID, idempotent)
		if err != nil {
			g.badGateway(w, b, err)
			return
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// A tombstone: the session moved. Follow to the node the
			// tombstone names when it is one of ours; otherwise relay
			// the 421 and let a redirect-following client take over.
			next := g.locationBackend(resp.Header.Get("Location"))
			drain(resp)
			if next == "" || next == addr {
				g.clearOverride(id)
				g.relayMisdirect(w, r, id, resp)
				return
			}
			if hops++; hops > proxyMaxHops {
				writeError(w, http.StatusBadGateway,
					fmt.Errorf("session %s: gave up after %d migration redirects", id, proxyMaxHops))
				return
			}
			g.metrics.RedirectsServed.Inc()
			g.setOverride(id, next)
			addr = next
			continue
		case resp.StatusCode == http.StatusNotFound && viaOverride:
			// Stale override; fall back to the ring owner.
			drain(resp)
			g.clearOverride(id)
			addr, viaOverride = owner, false
			continue
		case resp.StatusCode == http.StatusNotFound && !swept:
			// The ring owner doesn't have it. Sweep the fleet once: a
			// session can legitimately live off its owner right after a
			// rejoin, until the rebalance sweep moves it home.
			drain(resp)
			swept = true
			if found := g.discover(r.Context(), id, addr); found != "" {
				g.metrics.Discoveries.Inc()
				g.setOverride(id, found)
				addr = found
				continue
			}
			writeError(w, http.StatusNotFound, fmt.Errorf("no such session %s on any ready backend", id))
			return
		}
		g.relay(w, resp)
		return
	}
}

// relayMisdirect passes a 421 through with its Location rewritten only
// if empty (keep the node's own answer when it has one).
func (g *Gateway) relayMisdirect(w http.ResponseWriter, r *http.Request, id string, resp *http.Response) {
	if loc := resp.Header.Get("Location"); loc != "" {
		w.Header().Set("Location", loc)
	}
	writeError(w, http.StatusMisdirectedRequest,
		fmt.Errorf("session %s migrated off the fleet the gateway routes", id))
}

// locationBackend maps a Location header to a configured backend's
// Addr ("" when it names no backend the gateway knows).
func (g *Gateway) locationBackend(loc string) string {
	if loc == "" {
		return ""
	}
	u, err := url.Parse(loc)
	if err != nil || u.Host == "" {
		return ""
	}
	base := u.Scheme + "://" + u.Host
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.backends[base]; ok {
		return base
	}
	return ""
}

// discover sweeps the ready backends (skipping the one already asked)
// for a session the ring mispredicted, returning the Addr that has it.
func (g *Gateway) discover(ctx context.Context, id, except string) string {
	for _, b := range g.readyBackends() {
		if b.be.Addr == except {
			continue
		}
		if _, err := b.api.Status(ctx, id); err == nil {
			return b.be.Addr
		}
	}
	return ""
}

// forwardRetry wraps forward with the transport-retry budget: only
// transport failures retry (the breaker already saw them), and only
// for idempotent methods, where a duplicate cannot double-apply.
func (g *Gateway) forwardRetry(ctx context.Context, b *backendState, method, pathq string, body []byte, contentType, reqID string, idempotent bool) (*http.Response, error) {
	budget := 0
	if idempotent {
		budget = g.cfg.proxyRetries()
	}
	var resp *http.Response
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = g.forward(ctx, b, method, pathq, body, contentType, reqID)
		if err == nil || attempt >= budget || ctx.Err() != nil {
			return resp, err
		}
		g.metrics.ProxyRetries.Inc()
		select {
		case <-time.After(time.Duration(attempt+1) * 25 * time.Millisecond):
		case <-ctx.Done():
			return nil, err
		}
	}
}

// errBreakerOpen marks a request refused locally by an open breaker.
var errBreakerOpen = errors.New("circuit breaker open")

// forward sends one request to one backend and feeds the breaker and
// proxy metrics. A response (any status) is breaker success — the
// backend is serving; only transport-level failure counts against it.
func (g *Gateway) forward(ctx context.Context, b *backendState, method, pathq string, body []byte, contentType, reqID string) (*http.Response, error) {
	if !b.breaker.Allow() {
		g.metrics.BreakerState.With(b.be.Addr).Set(int64(b.breaker.State()))
		return nil, fmt.Errorf("%w for backend %s", errBreakerOpen, b.be.Addr)
	}
	ctx, cancel := context.WithTimeout(ctx, g.cfg.proxyTimeout())
	var rd io.Reader
	if len(body) > 0 || method == http.MethodPost || method == http.MethodPut {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.be.Addr+pathq, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	elapsed := time.Since(start)
	if err != nil {
		cancel()
		b.breaker.Failure()
		g.metrics.ObserveProxy(b.be.Addr, 0, elapsed)
		g.metrics.BreakerState.With(b.be.Addr).Set(int64(b.breaker.State()))
		return nil, err
	}
	b.breaker.Success()
	g.metrics.ObserveProxy(b.be.Addr, resp.StatusCode, elapsed)
	g.metrics.BreakerState.With(b.be.Addr).Set(int64(b.breaker.State()))
	// The response body must outlive this call; tie the timeout to it.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (cb *cancelBody) Close() error {
	err := cb.ReadCloser.Close()
	cb.cancel()
	return err
}

// relay copies a backend response to the client, streaming the body.
func (g *Gateway) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			if k == "X-Request-Id" {
				continue // the gateway already stamped its own
			}
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func (g *Gateway) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, http.StatusServiceUnavailable, errors.New(msg))
}

func (g *Gateway) badGateway(w http.ResponseWriter, b *backendState, err error) {
	if errors.Is(err, errBreakerOpen) {
		g.unavailable(w, err.Error())
		return
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %v", b.be.Addr, err))
}

// enqueue hands the orchestrator an event without blocking the prober;
// the sweeps are idempotent, so coalescing under burst is safe.
func (g *Gateway) enqueue(ev gwEvent) {
	select {
	case g.events <- ev:
	default:
		g.logf("pedgw: orchestrator busy, dropping %s event", ev.kind)
	}
}

// orchestrate serializes all migration work on one goroutine: ring
// changes and failovers never race each other moving the same session.
func (g *Gateway) orchestrate() {
	defer g.wg.Done()
	for {
		select {
		case <-g.stop:
			return
		case ev := <-g.events:
			switch ev.kind {
			case evRebalance:
				g.rebalance()
			case evFailover:
				g.failover(ev.backend)
			case evDrain:
				g.drainBackend(ev.backend)
			}
		}
	}
}

// rebalance sweeps every ready backend and migrates each session whose
// ring owner is elsewhere — run after a backend joins the ring, so the
// keys it now owns move to it and the ring's routing prediction comes
// true again.
func (g *Gateway) rebalance() {
	g.metrics.Rebalances.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.migrateTimeout())
	defer cancel()
	for _, b := range g.readyBackends() {
		infos, err := b.api.List(ctx)
		if err != nil {
			g.logf("pedgw: rebalance: list %s: %v", b.be.Addr, err)
			continue
		}
		for _, info := range infos {
			g.mu.Lock()
			owner := g.ring.Owner(info.ID)
			g.mu.Unlock()
			if owner == "" || owner == b.be.Addr {
				continue
			}
			if _, err := b.api.Migrate(ctx, info.ID, owner); err != nil {
				g.metrics.MigrationsFailed.Inc()
				g.logf("pedgw: rebalance: migrate %s %s -> %s: %v", info.ID, b.be.Addr, owner, err)
				continue
			}
			g.metrics.Migrations.Inc()
			g.clearOverride(info.ID)
			g.logf("pedgw: rebalance: migrated %s %s -> %s", info.ID, b.be.Addr, owner)
		}
	}
}

// drainBackend migrates every session off a backend that was removed
// from the config but is still alive (reload), so dropping it loses
// nothing.
func (g *Gateway) drainBackend(b *backendState) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.migrateTimeout())
	defer cancel()
	infos, err := b.api.List(ctx)
	if err != nil {
		g.logf("pedgw: drain %s: list: %v", b.be.Addr, err)
		return
	}
	for _, info := range infos {
		g.mu.Lock()
		owner := g.ring.Owner(info.ID)
		g.mu.Unlock()
		if owner == "" || owner == b.be.Addr {
			if owner == "" {
				g.logf("pedgw: drain %s: no ready backend for %s; session stays", b.be.Addr, info.ID)
			}
			continue
		}
		if _, err := b.api.Migrate(ctx, info.ID, owner); err != nil {
			g.metrics.MigrationsFailed.Inc()
			g.logf("pedgw: drain %s: migrate %s -> %s: %v", b.be.Addr, info.ID, owner, err)
			continue
		}
		g.metrics.Migrations.Inc()
		g.clearOverride(info.ID)
	}
}

// failover adopts a dead backend's sessions from its journals. This is
// the shared-storage path: it only works when the dead node's DataDir
// is visible from the gateway. Each journal is cleaned — the torn tail
// a kill -9 leaves holds only unacknowledged work, exactly what
// startup recovery would discard — and shipped to the session's new
// ring owner, whose import replays it through the same recovery code.
// Adopted journals are renamed *.wal.migrated and a tombstone is left,
// so the dead node restarting neither resurrects nor forks them.
func (g *Gateway) failover(b *backendState) {
	g.metrics.Failovers.Inc()
	if b.be.DataDir == "" {
		g.logf("pedgw: failover %s: no datadir configured for this backend; "+
			"its sessions cannot be adopted (configure addr|opsaddr|datadir with shared storage)", b.be.Addr)
		return
	}
	entries, err := os.ReadDir(b.be.DataDir)
	if err != nil {
		g.logf("pedgw: failover %s: reading %s: %v", b.be.Addr, b.be.DataDir, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.migrateTimeout())
	defer cancel()
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".wal") {
			continue
		}
		id := strings.TrimSuffix(name, ".wal")
		path := filepath.Join(b.be.DataDir, name)
		if err := g.failoverOne(ctx, b, id, path); err != nil {
			g.metrics.FailoverFailed.Inc()
			g.logf("pedgw: failover %s: session %s: %v", b.be.Addr, id, err)
			continue
		}
		g.metrics.FailoverSessions.Inc()
	}
}

func (g *Gateway) failoverOne(ctx context.Context, b *backendState, id, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	clean, err := server.CleanJournalStream(data)
	if err != nil {
		return fmt.Errorf("journal unusable: %w", err)
	}
	g.mu.Lock()
	owner := g.ring.Owner(id)
	g.mu.Unlock()
	if owner == "" || owner == b.be.Addr {
		return errors.New("no ready backend to adopt it")
	}
	ob := g.backend(owner)
	if ob == nil {
		return fmt.Errorf("owner %s not configured", owner)
	}
	if _, err := ob.api.Import(ctx, id, clean); err != nil {
		var apiErr *server.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
			// Already adopted — another gateway won the race. Retire
			// the journal the same way; the live copy is authoritative.
			g.logf("pedgw: failover %s: session %s already adopted by %s", b.be.Addr, id, owner)
		} else {
			return fmt.Errorf("import to %s: %w", owner, err)
		}
	}
	// Retire the source journal so the dead node restarting cannot
	// resurrect a forked copy, and leave a tombstone so it answers 421.
	if err := os.Rename(path, path+".migrated"); err != nil {
		return fmt.Errorf("journal adopted by %s but could not be retired: %w", owner, err)
	}
	_ = os.WriteFile(filepath.Join(b.be.DataDir, id+".moved"), []byte(owner+"\n"), 0o644)
	g.setOverride(id, owner)
	g.logf("pedgw: failover: adopted %s from %s onto %s (%d bytes)", id, b.be.Addr, owner, len(clean))
	return nil
}

// Reload swaps in a new backend set (SIGHUP): kept backends keep their
// health and breaker state, new ones join down (probes bring them up,
// then rebalance moves their keys in), and removed-but-alive backends
// are drained — their sessions migrate to the new ring — before the
// gateway forgets them.
func (g *Gateway) Reload(backends []Backend) {
	g.mu.Lock()
	next := make(map[string]*backendState, len(backends))
	var removed []*backendState
	for _, be := range backends {
		if old, ok := g.backends[be.Addr]; ok {
			old.be = be // opsaddr/datadir may have changed
			next[be.Addr] = old
			continue
		}
		next[be.Addr] = newBackendState(be, g.cfg)
		g.metrics.BackendUp.With(be.Addr).Set(0)
		g.metrics.BreakerState.With(be.Addr).Set(0)
	}
	for addr, b := range g.backends {
		if _, ok := next[addr]; !ok {
			removed = append(removed, b)
		}
	}
	g.backends = next
	g.rebuildRingLocked()
	g.mu.Unlock()
	g.logf("pedgw: reloaded backends: %d configured, %d removed", len(backends), len(removed))
	for _, b := range removed {
		if b.isReady() {
			g.enqueue(gwEvent{kind: evDrain, backend: b})
		}
	}
	g.enqueue(gwEvent{kind: evRebalance})
}

func writeJSON(w http.ResponseWriter, status int, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, server.ErrorResponse{
		Error:     err.Error(),
		RequestID: w.Header().Get("X-Request-ID"),
	})
}

func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
}
