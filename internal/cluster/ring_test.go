package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAcrossOrder: rings built from the same member
// set in any order must route every key identically — the property
// that lets parallel gateways agree without coordination.
func TestRingDeterministicAcrossOrder(t *testing.T) {
	a := NewRing(0, []string{"http://n1", "http://n2", "http://n3"})
	b := NewRing(0, []string{"http://n3", "http://n1", "http://n2"})
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("s%06x", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: owner differs by input order: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution: with 64 virtual nodes per member, no member of
// a 3-node ring should own a wildly skewed share of random keys.
func TestRingDistribution(t *testing.T) {
	members := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(0, members)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("s%08x", i*2654435761))]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys; distribution too skewed (%v)", m, share*100, counts)
		}
	}
}

// TestRingMinimalMovement: removing one member must move only the keys
// that member owned; every other key keeps its owner. This is what
// keeps rebalance migrations proportional to the change.
func TestRingMinimalMovement(t *testing.T) {
	full := NewRing(0, []string{"http://n1", "http://n2", "http://n3"})
	reduced := NewRing(0, []string{"http://n1", "http://n2"})
	moved, kept := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("s%06x", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "http://n3" {
			if after == "http://n3" {
				t.Fatalf("key %s still owned by removed member", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved (%s -> %s) though its owner never left", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split moved=%d kept=%d; test covered nothing", moved, kept)
	}
}

// TestRingEmptyAndSingle: an empty ring owns nothing; a single-member
// ring owns everything.
func TestRingEmptyAndSingle(t *testing.T) {
	if owner := NewRing(0, nil).Owner("s1"); owner != "" {
		t.Errorf("empty ring owner %q, want \"\"", owner)
	}
	one := NewRing(0, []string{"http://solo"})
	for i := 0; i < 100; i++ {
		if owner := one.Owner(fmt.Sprintf("k%d", i)); owner != "http://solo" {
			t.Fatalf("single-member ring routed %q elsewhere: %q", fmt.Sprintf("k%d", i), owner)
		}
	}
	if got := one.Members(); len(got) != 1 || got[0] != "http://solo" {
		t.Errorf("Members: %v", got)
	}
}
