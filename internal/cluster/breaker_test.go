package cluster

import (
	"testing"
	"time"
)

// TestBreakerTripAndRecover walks the full state machine: consecutive
// failures trip it, the cooldown gates a single half-open probe, and
// the probe's outcome closes or re-opens the circuit.
func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Second, now: func() time.Time { return now }}

	// Two failures: still closed (below threshold).
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("below threshold: %v, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	// A success clears the run; two more failures still don't trip.
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("run reset by success, then 2 failures: %v, want closed", st)
	}
	// The third consecutive failure trips it.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("at threshold: %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("after probe admission: %v, want half-open", st)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// Probe fails: straight back to open, new cooldown.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("failed probe: %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request immediately")
	}

	// Next probe succeeds: closed, and full threshold applies again.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("successful probe: %v, want closed", st)
	}
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("failure run must restart from zero after close: %v", st)
	}
}

// TestBreakerDefaults: zero-value thresholds take the documented
// defaults rather than tripping on the first failure.
func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("2 failures under default threshold 3: %v, want closed", st)
	}
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("3 failures under default threshold: %v, want open", st)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

// TestParseBackends covers the -backends spec grammar.
func TestParseBackends(t *testing.T) {
	got, err := ParseBackends("http://a:1,http://b:2|http://b:3|/data/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Addr != "http://a:1" ||
		got[1].Addr != "http://b:2" || got[1].OpsAddr != "http://b:3" || got[1].DataDir != "/data/b" {
		t.Fatalf("parsed: %+v", got)
	}
	if got[0].probeBase() != "http://a:1" || got[1].probeBase() != "http://b:3" {
		t.Errorf("probeBase fallback wrong: %q %q", got[0].probeBase(), got[1].probeBase())
	}
	for _, bad := range []string{"", "ftp://a", "http://", "http://a,http://a", "http://a|x|y|z", "not a url"} {
		if _, err := ParseBackends(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
