package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states, in escalation order. The numeric values are exported
// as the pedgw_backend_breaker_state gauge.
const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets exactly one probe request through; its
	// outcome closes or re-opens the circuit.
	BreakerHalfOpen
	// BreakerOpen rejects immediately until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// Breaker is a per-backend circuit breaker: Threshold consecutive
// transport failures trip it open, Cooldown later a single half-open
// probe is admitted, and that probe's outcome closes or re-opens the
// circuit. Only transport-level failures count — an application error
// (a 4xx, a quarantined session's 500) proves the backend is serving.
type Breaker struct {
	// Threshold is the consecutive-failure count that trips the
	// breaker (<= 0 takes 3).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (<= 0 takes 2s).
	Cooldown time.Duration

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool

	// now is a test seam; nil means time.Now.
	now func() time.Time
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 2 * time.Second
}

// Allow reports whether a request may proceed. An open breaker whose
// cooldown has elapsed flips to half-open and admits exactly one
// probe; callers that get true MUST report Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a request that reached the backend; it closes the
// circuit and clears the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a transport-level failure. In half-open it re-opens
// immediately; closed, it trips once the consecutive run hits the
// threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	if b.state == BreakerHalfOpen || b.failures >= b.threshold() {
		b.state = BreakerOpen
		b.openedAt = b.clock()
	}
}

// State reads the breaker's position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
