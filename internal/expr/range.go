package expr

import (
	"fmt"
	"math"
	"sort"

	"parascope/internal/fortran"
)

// Range is a (possibly half-open) integer interval. The infinity
// flags indicate an unbounded side; Lo/Hi are only meaningful when the
// corresponding flag is false.
type Range struct {
	Lo, Hi       int64
	LoInf, HiInf bool
}

// FullRange is (-inf, +inf).
var FullRange = Range{LoInf: true, HiInf: true}

// Exact returns the degenerate range [v, v].
func Exact(v int64) Range { return Range{Lo: v, Hi: v} }

// Bounded returns [lo, hi].
func Bounded(lo, hi int64) Range { return Range{Lo: lo, Hi: hi} }

// AtLeast returns [lo, +inf).
func AtLeast(lo int64) Range { return Range{Lo: lo, HiInf: true} }

// AtMost returns (-inf, hi].
func AtMost(hi int64) Range { return Range{Hi: hi, LoInf: true} }

// IsExact reports whether the range pins a single value.
func (r Range) IsExact() bool { return !r.LoInf && !r.HiInf && r.Lo == r.Hi }

// Empty reports whether the range contains no integers.
func (r Range) Empty() bool { return !r.LoInf && !r.HiInf && r.Lo > r.Hi }

// Contains reports whether v lies in the range.
func (r Range) Contains(v int64) bool {
	if !r.LoInf && v < r.Lo {
		return false
	}
	if !r.HiInf && v > r.Hi {
		return false
	}
	return true
}

// Add returns the interval sum.
func (r Range) Add(s Range) Range {
	out := Range{LoInf: r.LoInf || s.LoInf, HiInf: r.HiInf || s.HiInf}
	if !out.LoInf {
		out.Lo = satAdd(r.Lo, s.Lo)
	}
	if !out.HiInf {
		out.Hi = satAdd(r.Hi, s.Hi)
	}
	return out
}

// Neg returns the interval negation.
func (r Range) Neg() Range {
	return Range{
		Lo: -r.Hi, Hi: -r.Lo,
		LoInf: r.HiInf, HiInf: r.LoInf,
	}
}

// Sub returns r - s.
func (r Range) Sub(s Range) Range { return r.Add(s.Neg()) }

// Scale returns c*r.
func (r Range) Scale(c int64) Range {
	switch {
	case c == 0:
		return Exact(0)
	case c > 0:
		out := Range{LoInf: r.LoInf, HiInf: r.HiInf}
		if !out.LoInf {
			out.Lo = satMul(r.Lo, c)
		}
		if !out.HiInf {
			out.Hi = satMul(r.Hi, c)
		}
		return out
	default:
		return r.Neg().Scale(-c)
	}
}

// Intersect returns the intersection of r and s.
func (r Range) Intersect(s Range) Range {
	out := Range{LoInf: r.LoInf && s.LoInf, HiInf: r.HiInf && s.HiInf}
	switch {
	case r.LoInf:
		out.Lo = s.Lo
	case s.LoInf:
		out.Lo = r.Lo
	default:
		out.Lo = max64(r.Lo, s.Lo)
	}
	switch {
	case r.HiInf:
		out.Hi = s.Hi
	case s.HiInf:
		out.Hi = r.Hi
	default:
		out.Hi = min64(r.Hi, s.Hi)
	}
	return out
}

func (r Range) String() string {
	lo, hi := "-inf", "+inf"
	if !r.LoInf {
		lo = fmt.Sprintf("%d", r.Lo)
	}
	if !r.HiInf {
		hi = fmt.Sprintf("%d", r.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

func satAdd(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s > 0 {
		return math.MinInt64
	}
	return s
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Env carries what is known about integer symbol values: exact
// constants (from constant propagation or PARAMETER) and ranges (from
// loop bounds, declarations and user assertions).
type Env struct {
	ranges map[*fortran.Symbol]Range
}

// NewEnv returns an empty environment.
func NewEnv() *Env { return &Env{ranges: map[*fortran.Symbol]Range{}} }

// Clone returns a copy sharing nothing with e.
func (e *Env) Clone() *Env {
	out := NewEnv()
	for s, r := range e.ranges {
		out.ranges[s] = r
	}
	return out
}

// SetValue records sym == v.
func (e *Env) SetValue(sym *fortran.Symbol, v int64) { e.ranges[sym] = Exact(v) }

// SetRange records sym ∈ r, intersecting with prior knowledge.
func (e *Env) SetRange(sym *fortran.Symbol, r Range) {
	if old, ok := e.ranges[sym]; ok {
		r = old.Intersect(r)
	}
	e.ranges[sym] = r
}

// Symbols returns the symbols the environment knows about, sorted by
// name for deterministic iteration.
func (e *Env) Symbols() []*fortran.Symbol {
	out := make([]*fortran.Symbol, 0, len(e.ranges))
	for s := range e.ranges {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RangeOf returns what is known about sym.
func (e *Env) RangeOf(sym *fortran.Symbol) Range {
	if e == nil {
		return FullRange
	}
	if r, ok := e.ranges[sym]; ok {
		return r
	}
	return FullRange
}

// Value returns sym's exact value when known.
func (e *Env) Value(sym *fortran.Symbol) (int64, bool) {
	r := e.RangeOf(sym)
	if r.IsExact() {
		return r.Lo, true
	}
	return 0, false
}

// EvalRange bounds the linear form under the environment.
func (e *Env) EvalRange(l Linear) Range {
	out := Exact(l.Const)
	for _, t := range l.Terms {
		out = out.Add(e.RangeOf(t.Sym).Scale(t.Coef))
	}
	return out
}

// ProvePositive reports whether l >= 1 always holds under e.
func (e *Env) ProvePositive(l Linear) bool {
	r := e.EvalRange(l)
	return !r.LoInf && r.Lo >= 1
}

// ProveNonNegative reports whether l >= 0 always holds under e.
func (e *Env) ProveNonNegative(l Linear) bool {
	r := e.EvalRange(l)
	return !r.LoInf && r.Lo >= 0
}

// ProveNonZero reports whether l != 0 always holds under e.
func (e *Env) ProveNonZero(l Linear) bool {
	r := e.EvalRange(l)
	return !r.Contains(0)
}
