// Package expr provides the symbolic expression algebra underlying
// ParaScope's analyses: canonical affine (linear) forms over program
// symbols, integer ranges, an assumption environment fed by constant
// propagation and user assertions, and a constant folder used by the
// transformations.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"parascope/internal/fortran"
)

// Term is one c*sym component of a linear form.
type Term struct {
	Sym  *fortran.Symbol
	Coef int64
}

// Linear is a canonical affine form: sum of Terms plus Const. Terms
// are sorted by symbol name and never carry zero coefficients, so two
// equal forms are structurally identical.
type Linear struct {
	Terms []Term
	Const int64
}

// Con returns a constant linear form.
func Con(c int64) Linear { return Linear{Const: c} }

// Var returns the linear form 1*sym.
func Var(sym *fortran.Symbol) Linear {
	return Linear{Terms: []Term{{Sym: sym, Coef: 1}}}
}

// IsConst reports whether l has no symbolic terms.
func (l Linear) IsConst() bool { return len(l.Terms) == 0 }

// Coef returns the coefficient of sym (0 when absent).
func (l Linear) Coef(sym *fortran.Symbol) int64 {
	for _, t := range l.Terms {
		if t.Sym == sym {
			return t.Coef
		}
	}
	return 0
}

// Without returns l with sym's term removed.
func (l Linear) Without(sym *fortran.Symbol) Linear {
	out := Linear{Const: l.Const}
	for _, t := range l.Terms {
		if t.Sym != sym {
			out.Terms = append(out.Terms, t)
		}
	}
	return out
}

// Add returns l + m.
func (l Linear) Add(m Linear) Linear {
	coefs := map[*fortran.Symbol]int64{}
	var syms []*fortran.Symbol
	for _, t := range l.Terms {
		if _, ok := coefs[t.Sym]; !ok {
			syms = append(syms, t.Sym)
		}
		coefs[t.Sym] += t.Coef
	}
	for _, t := range m.Terms {
		if _, ok := coefs[t.Sym]; !ok {
			syms = append(syms, t.Sym)
		}
		coefs[t.Sym] += t.Coef
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	out := Linear{Const: l.Const + m.Const}
	for _, s := range syms {
		if c := coefs[s]; c != 0 {
			out.Terms = append(out.Terms, Term{Sym: s, Coef: c})
		}
	}
	return out
}

// Sub returns l - m.
func (l Linear) Sub(m Linear) Linear { return l.Add(m.Scale(-1)) }

// Scale returns c*l.
func (l Linear) Scale(c int64) Linear {
	if c == 0 {
		return Con(0)
	}
	out := Linear{Const: l.Const * c}
	for _, t := range l.Terms {
		out.Terms = append(out.Terms, Term{Sym: t.Sym, Coef: t.Coef * c})
	}
	return out
}

// Equal reports structural equality.
func (l Linear) Equal(m Linear) bool {
	if l.Const != m.Const || len(l.Terms) != len(m.Terms) {
		return false
	}
	for i := range l.Terms {
		if l.Terms[i].Sym != m.Terms[i].Sym || l.Terms[i].Coef != m.Terms[i].Coef {
			return false
		}
	}
	return true
}

// IsZero reports whether l is the constant 0.
func (l Linear) IsZero() bool { return l.IsConst() && l.Const == 0 }

// Subst replaces sym by the form v in l.
func (l Linear) Subst(sym *fortran.Symbol, v Linear) Linear {
	c := l.Coef(sym)
	if c == 0 {
		return l
	}
	return l.Without(sym).Add(v.Scale(c))
}

func (l Linear) String() string {
	if l.IsConst() {
		return fmt.Sprintf("%d", l.Const)
	}
	var b strings.Builder
	for i, t := range l.Terms {
		switch {
		case t.Coef == 1:
			if i > 0 {
				b.WriteString("+")
			}
		case t.Coef == -1:
			b.WriteString("-")
		default:
			if t.Coef > 0 && i > 0 {
				b.WriteString("+")
			}
			fmt.Fprintf(&b, "%d*", t.Coef)
		}
		b.WriteString(t.Sym.Name)
	}
	if l.Const > 0 {
		fmt.Fprintf(&b, "+%d", l.Const)
	} else if l.Const < 0 {
		fmt.Fprintf(&b, "%d", l.Const)
	}
	return b.String()
}

// Linearize converts e into an affine form over the unit's symbols.
// PARAMETER constants are substituted by their values. The second
// result is false when e is not affine with integer coefficients
// (products of variables, real arithmetic, calls, array references).
func Linearize(u *fortran.Unit, e fortran.Expr) (Linear, bool) {
	switch x := e.(type) {
	case *fortran.IntLit:
		return Con(x.Val), true
	case *fortran.VarRef:
		if len(x.Subs) > 0 {
			return Linear{}, false // array element: not affine in scalars
		}
		sym := x.Sym
		if sym == nil {
			sym = u.Lookup(x.Name)
		}
		if sym == nil {
			return Linear{}, false
		}
		if sym.Kind == fortran.SymParam && sym.Value != nil {
			return Linearize(u, sym.Value)
		}
		if sym.Type != fortran.TypeInteger {
			return Linear{}, false
		}
		return Var(sym), true
	case *fortran.Unary:
		if x.Op != fortran.TokMinus {
			return Linear{}, false
		}
		l, ok := Linearize(u, x.X)
		if !ok {
			return Linear{}, false
		}
		return l.Scale(-1), true
	case *fortran.Binary:
		lx, okx := Linearize(u, x.X)
		ly, oky := Linearize(u, x.Y)
		switch x.Op {
		case fortran.TokPlus:
			if okx && oky {
				return lx.Add(ly), true
			}
		case fortran.TokMinus:
			if okx && oky {
				return lx.Sub(ly), true
			}
		case fortran.TokStar:
			if okx && oky {
				if lx.IsConst() {
					return ly.Scale(lx.Const), true
				}
				if ly.IsConst() {
					return lx.Scale(ly.Const), true
				}
			}
		case fortran.TokSlash:
			if okx && oky && ly.IsConst() && ly.Const != 0 {
				// Exact integer division only.
				if lx.IsConst() && lx.Const%ly.Const == 0 {
					return Con(lx.Const / ly.Const), true
				}
				div := ly.Const
				out := Linear{}
				if lx.Const%div != 0 {
					return Linear{}, false
				}
				out.Const = lx.Const / div
				for _, t := range lx.Terms {
					if t.Coef%div != 0 {
						return Linear{}, false
					}
					out.Terms = append(out.Terms, Term{Sym: t.Sym, Coef: t.Coef / div})
				}
				return out, true
			}
		}
		return Linear{}, false
	}
	return Linear{}, false
}
