package expr

import (
	"parascope/internal/fortran"
)

// Fold simplifies an expression by constant folding and algebraic
// identities (x+0, x*1, x*0, x-x …). The input is not modified.
func Fold(e fortran.Expr) fortran.Expr {
	switch x := e.(type) {
	case *fortran.Unary:
		inner := Fold(x.X)
		if x.Op == fortran.TokMinus {
			if il, ok := inner.(*fortran.IntLit); ok {
				return &fortran.IntLit{Val: -il.Val}
			}
			if rl, ok := inner.(*fortran.RealLit); ok {
				return &fortran.RealLit{Val: -rl.Val, Double: rl.Double}
			}
			if u, ok := inner.(*fortran.Unary); ok && u.Op == fortran.TokMinus {
				return u.X
			}
		}
		return &fortran.Unary{Op: x.Op, X: inner}
	case *fortran.Binary:
		lhs := Fold(x.X)
		rhs := Fold(x.Y)
		if out, ok := foldInts(x.Op, lhs, rhs); ok {
			return out
		}
		if out, ok := foldIdentity(x.Op, lhs, rhs); ok {
			return out
		}
		return &fortran.Binary{Op: x.Op, X: lhs, Y: rhs}
	case *fortran.VarRef:
		if len(x.Subs) == 0 {
			return x
		}
		c := &fortran.VarRef{Sym: x.Sym, Name: x.Name}
		for _, s := range x.Subs {
			c.Subs = append(c.Subs, Fold(s))
		}
		return c
	case *fortran.FuncCall:
		c := &fortran.FuncCall{Sym: x.Sym, Name: x.Name, Callee: x.Callee}
		for _, a := range x.Args {
			c.Args = append(c.Args, Fold(a))
		}
		return c
	}
	return e
}

func foldInts(op fortran.TokKind, lhs, rhs fortran.Expr) (fortran.Expr, bool) {
	a, okA := lhs.(*fortran.IntLit)
	b, okB := rhs.(*fortran.IntLit)
	if !okA || !okB {
		return nil, false
	}
	switch op {
	case fortran.TokPlus:
		return &fortran.IntLit{Val: a.Val + b.Val}, true
	case fortran.TokMinus:
		return &fortran.IntLit{Val: a.Val - b.Val}, true
	case fortran.TokStar:
		return &fortran.IntLit{Val: a.Val * b.Val}, true
	case fortran.TokSlash:
		if b.Val != 0 {
			return &fortran.IntLit{Val: a.Val / b.Val}, true
		}
	case fortran.TokPower:
		if b.Val >= 0 && b.Val < 16 {
			v := int64(1)
			for i := int64(0); i < b.Val; i++ {
				v *= a.Val
			}
			return &fortran.IntLit{Val: v}, true
		}
	}
	return nil, false
}

func foldIdentity(op fortran.TokKind, lhs, rhs fortran.Expr) (fortran.Expr, bool) {
	isInt := func(e fortran.Expr, v int64) bool {
		il, ok := e.(*fortran.IntLit)
		return ok && il.Val == v
	}
	switch op {
	case fortran.TokPlus:
		if isInt(lhs, 0) {
			return rhs, true
		}
		if isInt(rhs, 0) {
			return lhs, true
		}
		// a + (-b) => a - b for tidier printing.
		if u, ok := rhs.(*fortran.Unary); ok && u.Op == fortran.TokMinus {
			return &fortran.Binary{Op: fortran.TokMinus, X: lhs, Y: u.X}, true
		}
		if il, ok := rhs.(*fortran.IntLit); ok && il.Val < 0 {
			return &fortran.Binary{Op: fortran.TokMinus, X: lhs, Y: &fortran.IntLit{Val: -il.Val}}, true
		}
	case fortran.TokMinus:
		if isInt(rhs, 0) {
			return lhs, true
		}
		if sameScalar(lhs, rhs) {
			return &fortran.IntLit{Val: 0}, true
		}
	case fortran.TokStar:
		if isInt(lhs, 1) {
			return rhs, true
		}
		if isInt(rhs, 1) {
			return lhs, true
		}
		if isInt(lhs, 0) || isInt(rhs, 0) {
			return &fortran.IntLit{Val: 0}, true
		}
	case fortran.TokSlash:
		if isInt(rhs, 1) {
			return lhs, true
		}
	}
	return nil, false
}

func sameScalar(a, b fortran.Expr) bool {
	ra, okA := a.(*fortran.VarRef)
	rb, okB := b.(*fortran.VarRef)
	return okA && okB && len(ra.Subs) == 0 && len(rb.Subs) == 0 && ra.Name == rb.Name
}

// ToExpr converts a linear form back into a Fortran expression,
// choosing the tidiest spelling (leading positive term first).
func ToExpr(l Linear) fortran.Expr {
	var out fortran.Expr
	add := func(e fortran.Expr, negative bool) {
		if out == nil {
			if negative {
				out = &fortran.Unary{Op: fortran.TokMinus, X: e}
			} else {
				out = e
			}
			return
		}
		op := fortran.TokPlus
		if negative {
			op = fortran.TokMinus
		}
		out = &fortran.Binary{Op: op, X: out, Y: e}
	}
	for _, t := range l.Terms {
		coef := t.Coef
		neg := coef < 0
		if neg {
			coef = -coef
		}
		var e fortran.Expr = &fortran.VarRef{Sym: t.Sym, Name: t.Sym.Name}
		if coef != 1 {
			e = &fortran.Binary{Op: fortran.TokStar, X: &fortran.IntLit{Val: coef}, Y: e}
		}
		add(e, neg)
	}
	if l.Const != 0 || out == nil {
		c := l.Const
		neg := c < 0
		if neg {
			c = -c
		}
		add(&fortran.IntLit{Val: c}, neg)
	}
	return out
}
