package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parascope/internal/fortran"
)

// testUnit builds a unit with integer scalars for the given names.
func testUnit(names ...string) *fortran.Unit {
	u := &fortran.Unit{Kind: fortran.UnitSubroutine, Name: "t", Syms: map[string]*fortran.Symbol{}}
	for _, n := range names {
		u.Syms[n] = &fortran.Symbol{Name: n, Kind: fortran.SymScalar, Type: fortran.TypeInteger, Unit: u}
	}
	return u
}

func parseExprIn(t *testing.T, u *fortran.Unit, src string) fortran.Expr {
	t.Helper()
	full := "      program main\n      integer "
	first := true
	for n := range u.Syms {
		if !first {
			full += ", "
		}
		full += n
		first = false
	}
	full += "\n      ires = " + src + "\n      end\n"
	f, err := fortran.Parse("e.f", full)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	as := f.Units[0].Body[0].(*fortran.AssignStmt)
	// Re-bind symbols to u's symbols by name so Linearize sees them.
	var rebind func(e fortran.Expr)
	rebind = func(e fortran.Expr) {
		switch x := e.(type) {
		case *fortran.VarRef:
			if s, ok := u.Syms[x.Name]; ok {
				x.Sym = s
			}
			for _, s := range x.Subs {
				rebind(s)
			}
		case *fortran.Unary:
			rebind(x.X)
		case *fortran.Binary:
			rebind(x.X)
			rebind(x.Y)
		case *fortran.FuncCall:
			for _, a := range x.Args {
				rebind(a)
			}
		}
	}
	rebind(as.Rhs)
	return as.Rhs
}

func TestLinearizeBasic(t *testing.T) {
	u := testUnit("i", "j", "n")
	cases := []struct {
		src  string
		want string
	}{
		{"i + 1", "i+1"},
		{"2*i + 3*j - 5", "2*i+3*j-5"},
		{"i - i", "0"},
		{"n - (n - 1)", "1"},
		{"-(i + j)", "-i-j"},
		{"4*(i+2)/2", "2*i+4"},
		{"3*i - 2*i", "i"},
	}
	for _, c := range cases {
		e := parseExprIn(t, u, c.src)
		l, ok := Linearize(u, e)
		if !ok {
			t.Errorf("%s: not affine", c.src)
			continue
		}
		if got := l.String(); got != c.want {
			t.Errorf("%s: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestLinearizeRejectsNonAffine(t *testing.T) {
	u := testUnit("i", "j")
	for _, src := range []string{"i*j", "i/2", "mod(i,2)", "i + 0.5"} {
		e := parseExprIn(t, u, src)
		if _, ok := Linearize(u, e); ok {
			t.Errorf("%s: unexpectedly affine", src)
		}
	}
}

func TestLinearizeParameter(t *testing.T) {
	u := testUnit("i")
	p := &fortran.Symbol{Name: "n", Kind: fortran.SymParam, Type: fortran.TypeInteger,
		Value: &fortran.IntLit{Val: 100}, Unit: u}
	u.Syms["n"] = p
	e := parseExprIn(t, u, "i + n")
	l, ok := Linearize(u, e)
	if !ok || l.String() != "i+100" {
		t.Errorf("got %v %v, want i+100", l, ok)
	}
}

func TestLinearAlgebraProperties(t *testing.T) {
	syms := []*fortran.Symbol{
		{Name: "a", Type: fortran.TypeInteger},
		{Name: "b", Type: fortran.TypeInteger},
		{Name: "c", Type: fortran.TypeInteger},
	}
	rnd := rand.New(rand.NewSource(42))
	randLin := func() Linear {
		l := Con(int64(rnd.Intn(21) - 10))
		for _, s := range syms {
			if rnd.Intn(2) == 1 {
				l = l.Add(Var(s).Scale(int64(rnd.Intn(11) - 5)))
			}
		}
		return l
	}
	for i := 0; i < 500; i++ {
		x, y, z := randLin(), randLin(), randLin()
		if !x.Add(y).Equal(y.Add(x)) {
			t.Fatalf("Add not commutative: %s, %s", x, y)
		}
		if !x.Add(y).Add(z).Equal(x.Add(y.Add(z))) {
			t.Fatalf("Add not associative")
		}
		if !x.Sub(x).IsZero() {
			t.Fatalf("x - x != 0 for %s", x)
		}
		if !x.Scale(3).Sub(x).Sub(x).Sub(x).IsZero() {
			t.Fatalf("3x - x - x - x != 0 for %s", x)
		}
		// Substituting a fresh var for itself is identity.
		if !x.Subst(syms[0], Var(syms[0])).Equal(x) {
			t.Fatalf("identity substitution changed %s", x)
		}
	}
}

func TestRangeArithmetic(t *testing.T) {
	r := Bounded(1, 10)
	s := Bounded(-2, 3)
	sum := r.Add(s)
	if sum.Lo != -1 || sum.Hi != 13 {
		t.Errorf("sum = %s", sum)
	}
	if got := r.Scale(-2); got.Lo != -20 || got.Hi != -2 {
		t.Errorf("scale = %s", got)
	}
	if got := r.Intersect(Bounded(5, 20)); got.Lo != 5 || got.Hi != 10 {
		t.Errorf("intersect = %s", got)
	}
	inf := AtLeast(3)
	if got := inf.Add(Exact(2)); got.Lo != 5 || !got.HiInf {
		t.Errorf("inf add = %s", got)
	}
	if !Bounded(3, 1).Empty() {
		t.Error("Bounded(3,1) should be empty")
	}
}

func TestRangePropertyContains(t *testing.T) {
	// Interval arithmetic must be conservative: if a ∈ r and b ∈ s
	// then a+b ∈ r.Add(s) and c*a ∈ r.Scale(c).
	f := func(a, b int16, c int8) bool {
		r := Bounded(int64(a)-3, int64(a)+3)
		s := Bounded(int64(b)-5, int64(b)+5)
		if !r.Add(s).Contains(int64(a) + int64(b)) {
			return false
		}
		return r.Scale(int64(c)).Contains(int64(a) * int64(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvEvalRange(t *testing.T) {
	i := &fortran.Symbol{Name: "i", Type: fortran.TypeInteger}
	n := &fortran.Symbol{Name: "n", Type: fortran.TypeInteger}
	env := NewEnv()
	env.SetRange(i, Bounded(1, 100))
	env.SetValue(n, 100)

	// n - i: [0, 99]
	l := Var(n).Sub(Var(i))
	r := env.EvalRange(l)
	if r.Lo != 0 || r.Hi != 99 {
		t.Errorf("n-i = %s", r)
	}
	if !env.ProveNonNegative(l) {
		t.Error("n-i should be provably non-negative")
	}
	if env.ProvePositive(l) {
		t.Error("n-i is not provably positive (can be 0)")
	}
	// 2*i + 1 is never zero.
	if !env.ProveNonZero(Var(i).Scale(2).Add(Con(1))) {
		t.Error("2i+1 should be provably nonzero")
	}
}

func TestEnvIntersection(t *testing.T) {
	n := &fortran.Symbol{Name: "n", Type: fortran.TypeInteger}
	env := NewEnv()
	env.SetRange(n, AtLeast(1))
	env.SetRange(n, AtMost(50))
	r := env.RangeOf(n)
	if r.Lo != 1 || r.Hi != 50 || r.LoInf || r.HiInf {
		t.Errorf("n range = %s, want [1,50]", r)
	}
	clone := env.Clone()
	clone.SetValue(n, 7)
	if got := env.RangeOf(n); got.IsExact() {
		t.Error("Clone leaked writes back to the original env")
	}
}

func TestFold(t *testing.T) {
	u := testUnit("i", "n")
	cases := []struct {
		src, want string
	}{
		{"1 + 2", "3"},
		{"i + 0", "i"},
		{"0 + i", "i"},
		{"i*1", "i"},
		{"i*0", "0"},
		{"i - i", "0"},
		{"2*3 + i", "6 + i"},
		{"(n + 1) - 1", "n + 1 - 1"}, // fold is shallow over re-association
		{"i/1", "i"},
		{"2**3", "8"},
	}
	for _, c := range cases {
		e := parseExprIn(t, u, c.src)
		if got := Fold(e).String(); got != c.want {
			t.Errorf("Fold(%s) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestToExprRoundTrip(t *testing.T) {
	u := testUnit("i", "j", "n")
	for _, src := range []string{"i + 1", "2*i - 3*j + n", "-i + 4", "7"} {
		e := parseExprIn(t, u, src)
		l, ok := Linearize(u, e)
		if !ok {
			t.Fatalf("%s: not affine", src)
		}
		back := ToExpr(l)
		l2, ok := Linearize(u, back)
		if !ok {
			t.Fatalf("ToExpr(%s) = %s not affine", src, back)
		}
		if !l.Equal(l2) {
			t.Errorf("%s: round trip %s != %s", src, l2, l)
		}
	}
}

func TestLinearizeViaFileParse(t *testing.T) {
	// End-to-end: symbols resolved by the real front end.
	f := fortran.MustParse("l.f", `
      program main
      integer i, j, k
      real a(100)
      a(2*i + 3) = 0.0
      a(i + j - k) = 1.0
      end
`)
	u := f.Units[0]
	a0 := u.Body[0].(*fortran.AssignStmt)
	l, ok := Linearize(u, a0.Lhs.Subs[0])
	if !ok || l.String() != "2*i+3" {
		t.Errorf("got %v %v", l, ok)
	}
	a1 := u.Body[1].(*fortran.AssignStmt)
	l, ok = Linearize(u, a1.Lhs.Subs[0])
	if !ok || l.Coef(u.Lookup("k")) != -1 {
		t.Errorf("got %v %v", l, ok)
	}
}

// Property (testing/quick): scaling distributes over addition and
// substitution respects evaluation, for arbitrary coefficients.
func TestQuickLinearLaws(t *testing.T) {
	x := &fortran.Symbol{Name: "x", Type: fortran.TypeInteger}
	y := &fortran.Symbol{Name: "y", Type: fortran.TypeInteger}
	evalAt := func(l Linear, vx, vy int64) int64 {
		v := l.Const
		for _, tm := range l.Terms {
			switch tm.Sym {
			case x:
				v += tm.Coef * vx
			case y:
				v += tm.Coef * vy
			}
		}
		return v
	}
	mk := func(cx, cy, c int8) Linear {
		return Var(x).Scale(int64(cx)).Add(Var(y).Scale(int64(cy))).Add(Con(int64(c)))
	}
	distributes := func(ax, ay, ac, bx, by, bc, k, vx, vy int8) bool {
		a, b := mk(ax, ay, ac), mk(bx, by, bc)
		lhs := a.Add(b).Scale(int64(k))
		rhs := a.Scale(int64(k)).Add(b.Scale(int64(k)))
		return lhs.Equal(rhs) &&
			evalAt(lhs, int64(vx), int64(vy)) == int64(k)*(evalAt(a, int64(vx), int64(vy))+evalAt(b, int64(vx), int64(vy)))
	}
	if err := quick.Check(distributes, nil); err != nil {
		t.Error(err)
	}
	substEval := func(ax, ay, ac, rx, rc, vx, vy int8) bool {
		// Substituting y := rx*x + rc must evaluate like composing.
		a := mk(ax, ay, ac)
		r := Var(x).Scale(int64(rx)).Add(Con(int64(rc)))
		sub := a.Subst(y, r)
		vyComposed := int64(rx)*int64(vx) + int64(rc)
		return evalAt(sub, int64(vx), 0) == evalAt(a, int64(vx), vyComposed)
	}
	if err := quick.Check(substEval, nil); err != nil {
		t.Error(err)
	}
}
