// Package cfg builds per-procedure control-flow graphs from the
// structured Fortran AST and derives dominators, postdominators,
// control dependences and the loop-nest tree used by the dependence
// analyzer and the transformations.
package cfg

import (
	"fmt"
	"strings"

	"parascope/internal/fortran"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	NodeEntry NodeKind = iota
	NodeExit
	NodeStmt
)

// Node is one CFG node: a statement, or the synthetic entry/exit.
type Node struct {
	Index int
	Kind  NodeKind
	Stmt  fortran.Stmt // nil for entry/exit
	Succs []*Node
	Preds []*Node
}

func (n *Node) String() string {
	switch n.Kind {
	case NodeEntry:
		return "entry"
	case NodeExit:
		return "exit"
	}
	return fmt.Sprintf("s%d[%s]", n.Stmt.ID(), fortran.StmtText(n.Stmt))
}

// Graph is the control-flow graph of one program unit.
type Graph struct {
	Unit  *fortran.Unit
	Entry *Node
	Exit  *Node
	Nodes []*Node

	byStmt map[int]*Node
}

// NodeFor returns the CFG node for the statement, or nil.
func (g *Graph) NodeFor(s fortran.Stmt) *Node {
	if s == nil {
		return nil
	}
	return g.byStmt[s.ID()]
}

type builder struct {
	g      *Graph
	labels map[int]*Node
	gotos  []*Node // goto nodes to wire after all labels are known
}

// Build constructs the CFG for unit u.
func Build(u *fortran.Unit) *Graph {
	g := &Graph{Unit: u, byStmt: map[int]*Node{}}
	b := &builder{g: g, labels: map[int]*Node{}}
	g.Entry = b.newNode(NodeEntry, nil)
	g.Exit = b.newNode(NodeExit, nil)

	// Pass 1: create a node per statement and record labels.
	fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
		n := b.newNode(NodeStmt, s)
		g.byStmt[s.ID()] = n
		if l := fortran.StmtLabel(s); l != 0 {
			b.labels[l] = n
		}
		return true
	})

	// Pass 2: wire edges.
	ends := b.wireBlock(u.Body, []*Node{g.Entry})
	for _, e := range ends {
		b.edge(e, g.Exit)
	}
	for _, gn := range b.gotos {
		gs := gn.Stmt.(*fortran.GotoStmt)
		if tgt, ok := b.labels[gs.Target]; ok {
			b.edge(gn, tgt)
		} else {
			// Unknown label: treat as exit so analyses stay sound.
			b.edge(gn, g.Exit)
		}
	}
	// Guarantee exit reachability for infinite loops so that
	// postdominance is well defined.
	if len(g.Exit.Preds) == 0 {
		b.edge(g.Entry, g.Exit)
	}
	return g
}

func (b *builder) newNode(k NodeKind, s fortran.Stmt) *Node {
	n := &Node{Index: len(b.g.Nodes), Kind: k, Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) edge(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// wireBlock connects the statements of body in sequence. froms are
// the dangling predecessors entering the block; the return value is
// the dangling ends leaving it.
func (b *builder) wireBlock(body []fortran.Stmt, froms []*Node) []*Node {
	cur := froms
	for _, s := range body {
		n := b.g.byStmt[s.ID()]
		for _, f := range cur {
			b.edge(f, n)
		}
		cur = b.wireStmt(s, n)
	}
	return cur
}

// wireStmt wires the interior of statement s (whose node is n) and
// returns the dangling exits.
func (b *builder) wireStmt(s fortran.Stmt, n *Node) []*Node {
	switch st := s.(type) {
	case *fortran.IfStmt:
		thenEnds := b.wireBlock(st.Then, []*Node{n})
		if len(st.Else) > 0 {
			elseEnds := b.wireBlock(st.Else, []*Node{n})
			return append(thenEnds, elseEnds...)
		}
		return append(thenEnds, n)
	case *fortran.DoStmt:
		bodyEnds := b.wireBlock(st.Body, []*Node{n})
		for _, e := range bodyEnds {
			b.edge(e, n) // back edge
		}
		return []*Node{n} // loop exit falls out of the header
	case *fortran.WhileStmt:
		bodyEnds := b.wireBlock(st.Body, []*Node{n})
		for _, e := range bodyEnds {
			b.edge(e, n)
		}
		return []*Node{n}
	case *fortran.GotoStmt:
		b.gotos = append(b.gotos, n)
		return nil // no fallthrough
	case *fortran.ReturnStmt, *fortran.StopStmt:
		b.edge(n, b.g.Exit)
		return nil
	default:
		return []*Node{n}
	}
}

// ---------------------------------------------------------------------------
// Dominators (Cooper/Harvey/Kennedy iterative algorithm)

// Dominators holds the immediate-dominator relation for a graph
// direction (forward = dominators, reverse = postdominators).
type Dominators struct {
	idom map[*Node]*Node
	root *Node
}

// IDom returns the immediate dominator of n (nil for the root).
func (d *Dominators) IDom(n *Node) *Node { return d.idom[n] }

// Dominates reports whether a dominates b (reflexive).
func (d *Dominators) Dominates(a, b *Node) bool {
	for x := b; x != nil; x = d.idom[x] {
		if x == a {
			return true
		}
		if x == d.root {
			return a == d.root
		}
	}
	return false
}

// ComputeDominators returns the dominator tree rooted at entry.
func (g *Graph) ComputeDominators() *Dominators {
	return computeDom(g.Entry, func(n *Node) []*Node { return n.Preds },
		func(n *Node) []*Node { return n.Succs })
}

// ComputePostdominators returns the postdominator tree rooted at exit.
func (g *Graph) ComputePostdominators() *Dominators {
	return computeDom(g.Exit, func(n *Node) []*Node { return n.Succs },
		func(n *Node) []*Node { return n.Preds })
}

func computeDom(root *Node, preds, succs func(*Node) []*Node) *Dominators {
	// Reverse postorder from root following succs.
	var order []*Node
	seen := map[*Node]bool{root: true}
	var dfs func(n *Node)
	dfs = func(n *Node) {
		for _, s := range succs(n) {
			if !seen[s] {
				seen[s] = true
				dfs(s)
			}
		}
		order = append(order, n)
	}
	dfs(root)
	// order is postorder; reverse for RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := map[*Node]int{}
	for i, n := range order {
		rpoNum[n] = i
	}
	idom := map[*Node]*Node{root: root}
	intersect := func(a, b *Node) *Node {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, n := range order {
			if n == root {
				continue
			}
			var newIdom *Node
			for _, p := range preds(n) {
				if _, ok := rpoNum[p]; !ok {
					continue // unreachable predecessor
				}
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	idom[root] = nil
	return &Dominators{idom: idom, root: root}
}

// ---------------------------------------------------------------------------
// Control dependence (Ferrante/Ottenstein/Warren via postdominators)

// ControlDeps maps each statement node to the branch nodes it is
// control dependent on.
type ControlDeps struct {
	deps map[*Node][]*Node
}

// DepsOf returns the branches controlling n.
func (c *ControlDeps) DepsOf(n *Node) []*Node { return c.deps[n] }

// ComputeControlDeps computes control dependences for the graph.
func (g *Graph) ComputeControlDeps() *ControlDeps {
	pdom := g.ComputePostdominators()
	out := &ControlDeps{deps: map[*Node][]*Node{}}
	for _, a := range g.Nodes {
		if len(a.Succs) < 2 {
			continue
		}
		for _, b := range a.Succs {
			if pdom.Dominates(b, a) {
				continue // b postdominates a: not control dependent
			}
			// Walk up the postdominator tree from b to ipdom(a).
			stopAt := pdom.IDom(a)
			for x := b; x != nil && x != stopAt; x = pdom.IDom(x) {
				out.deps[x] = appendUnique(out.deps[x], a)
				if x == pdom.IDom(x) {
					break
				}
			}
		}
	}
	return out
}

func appendUnique(list []*Node, n *Node) []*Node {
	for _, x := range list {
		if x == n {
			return list
		}
	}
	return append(list, n)
}

// ---------------------------------------------------------------------------
// Loop-nest tree (from the structured AST)

// Loop is one DO loop in the nest tree.
type Loop struct {
	Do       *fortran.DoStmt
	Parent   *Loop
	Children []*Loop
	Depth    int // 1 = outermost
}

// Header returns the loop's induction variable symbol.
func (l *Loop) Header() *fortran.Symbol { return l.Do.Var }

// Contains reports whether stmt s lies (transitively) inside l.
func (l *Loop) Contains(s fortran.Stmt) bool {
	found := false
	fortran.WalkStmts(l.Do.Body, func(x fortran.Stmt) bool {
		if x == s {
			found = true
		}
		return !found
	})
	return found
}

// Stmts returns every statement nested in the loop body, pre-order.
func (l *Loop) Stmts() []fortran.Stmt {
	var out []fortran.Stmt
	fortran.WalkStmts(l.Do.Body, func(s fortran.Stmt) bool {
		out = append(out, s)
		return true
	})
	return out
}

// NestVars returns the induction variables from the outermost
// enclosing loop down to l.
func (l *Loop) NestVars() []*fortran.Symbol {
	var chain []*Loop
	for x := l; x != nil; x = x.Parent {
		chain = append(chain, x)
	}
	out := make([]*fortran.Symbol, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		out = append(out, chain[i].Header())
	}
	return out
}

// Nest returns the loops from outermost to l.
func (l *Loop) Nest() []*Loop {
	var chain []*Loop
	for x := l; x != nil; x = x.Parent {
		chain = append(chain, x)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

func (l *Loop) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "do %s (depth %d)", l.Header().Name, l.Depth)
	return b.String()
}

// LoopTree is the forest of DO loops of a unit.
type LoopTree struct {
	Unit  *fortran.Unit
	Roots []*Loop
	All   []*Loop

	byDo map[*fortran.DoStmt]*Loop
	// inner maps every statement of the unit to its innermost
	// enclosing loop (nil outside any loop). Built eagerly so lookups
	// are read-only: the dependence analyzer queries it from
	// concurrent worker goroutines.
	inner map[fortran.Stmt]*Loop
}

// LoopOf returns the Loop wrapper for a DO statement, or nil.
func (t *LoopTree) LoopOf(do *fortran.DoStmt) *Loop { return t.byDo[do] }

// Innermost returns the innermost loop containing statement s, or nil.
func (t *LoopTree) Innermost(s fortran.Stmt) *Loop {
	if l, ok := t.inner[s]; ok {
		return l
	}
	// Statement spliced into the unit after the tree was built and not
	// re-indexed (see Reindex). Fall back to searching; do not cache —
	// concurrent readers share the map.
	var best *Loop
	for _, l := range t.All {
		if l.Do == s {
			// A DO statement belongs to its parent loop.
			continue
		}
		if l.Contains(s) && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}

// Reindex records that statement new replaced old 1:1 in the unit
// body, so new inherits old's position in the innermost-loop index.
// Callers must not invoke it concurrently with lookups.
func (t *LoopTree) Reindex(old, new fortran.Stmt) {
	if l, ok := t.inner[old]; ok {
		delete(t.inner, old)
		t.inner[new] = l
	}
}

// BuildLoopTree constructs the loop forest for u.
func BuildLoopTree(u *fortran.Unit) *LoopTree {
	t := &LoopTree{Unit: u, byDo: map[*fortran.DoStmt]*Loop{}}
	var walk func(body []fortran.Stmt, parent *Loop, depth int)
	walk = func(body []fortran.Stmt, parent *Loop, depth int) {
		for _, s := range body {
			switch st := s.(type) {
			case *fortran.DoStmt:
				l := &Loop{Do: st, Parent: parent, Depth: depth}
				t.byDo[st] = l
				t.All = append(t.All, l)
				if parent == nil {
					t.Roots = append(t.Roots, l)
				} else {
					parent.Children = append(parent.Children, l)
				}
				walk(st.Body, l, depth+1)
			case *fortran.IfStmt:
				walk(st.Then, parent, depth)
				walk(st.Else, parent, depth)
			case *fortran.WhileStmt:
				walk(st.Body, parent, depth)
			}
		}
	}
	walk(u.Body, nil, 1)
	t.inner = make(map[fortran.Stmt]*Loop)
	fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
		t.inner[s] = nil
		return true
	})
	// Parents precede children in All, so deeper loops overwrite.
	for _, l := range t.All {
		fortran.WalkStmts(l.Do.Body, func(s fortran.Stmt) bool {
			t.inner[s] = l
			return true
		})
	}
	return t
}
