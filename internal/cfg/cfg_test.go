package cfg

import (
	"testing"

	"parascope/internal/fortran"
)

func parseUnit(t *testing.T, src string) *fortran.Unit {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f.Units[0]
}

func TestStraightLineCFG(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i
      i = 1
      i = 2
      i = 3
      end
`)
	g := Build(u)
	// entry -> s1 -> s2 -> s3 -> exit
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry has %d succs", len(g.Entry.Succs))
	}
	n := g.Entry.Succs[0]
	count := 0
	for n != g.Exit {
		count++
		if len(n.Succs) != 1 {
			t.Fatalf("node %v has %d succs", n, len(n.Succs))
		}
		n = n.Succs[0]
	}
	if count != 3 {
		t.Errorf("path length = %d, want 3", count)
	}
}

func TestIfCFGAndPostdominators(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i, j
      i = 1
      if (i .gt. 0) then
         j = 1
      else
         j = 2
      endif
      j = 3
      end
`)
	g := Build(u)
	ifNode := g.NodeFor(u.Body[1])
	if len(ifNode.Succs) != 2 {
		t.Fatalf("if node has %d succs, want 2", len(ifNode.Succs))
	}
	joinNode := g.NodeFor(u.Body[2])
	pdom := g.ComputePostdominators()
	if !pdom.Dominates(joinNode, ifNode) {
		t.Error("join should postdominate the branch")
	}
	thenNode := g.NodeFor(u.Body[1].(*fortran.IfStmt).Then[0])
	if pdom.Dominates(thenNode, ifNode) {
		t.Error("then-branch must not postdominate the branch")
	}
}

func TestLoopCFG(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i, n
      real a(10)
      n = 10
      do i = 1, n
         a(i) = 0.0
      enddo
      n = 0
      end
`)
	g := Build(u)
	do := u.Body[1].(*fortran.DoStmt)
	header := g.NodeFor(do)
	if len(header.Succs) != 2 {
		t.Fatalf("loop header has %d succs, want 2 (body, after)", len(header.Succs))
	}
	bodyNode := g.NodeFor(do.Body[0])
	hasBack := false
	for _, s := range bodyNode.Succs {
		if s == header {
			hasBack = true
		}
	}
	if !hasBack {
		t.Error("missing back edge from body to header")
	}
	dom := g.ComputeDominators()
	if !dom.Dominates(header, bodyNode) {
		t.Error("header should dominate body")
	}
}

func TestControlDeps(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i, j
      i = 1
      if (i .gt. 0) then
         j = 1
      endif
      j = 3
      end
`)
	g := Build(u)
	cd := g.ComputeControlDeps()
	ifStmt := u.Body[1].(*fortran.IfStmt)
	thenNode := g.NodeFor(ifStmt.Then[0])
	deps := cd.DepsOf(thenNode)
	if len(deps) != 1 || deps[0] != g.NodeFor(ifStmt) {
		t.Errorf("then-branch control deps = %v, want the IF", deps)
	}
	after := g.NodeFor(u.Body[2])
	for _, d := range cd.DepsOf(after) {
		if d == g.NodeFor(ifStmt) {
			t.Error("statement after the IF must not be control dependent on it")
		}
	}
}

func TestControlDepsInLoop(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i
      real a(10)
      do i = 1, 10
         a(i) = 1.0
      enddo
      end
`)
	g := Build(u)
	cd := g.ComputeControlDeps()
	do := u.Body[0].(*fortran.DoStmt)
	bodyNode := g.NodeFor(do.Body[0])
	found := false
	for _, d := range cd.DepsOf(bodyNode) {
		if d == g.NodeFor(do) {
			found = true
		}
	}
	if !found {
		t.Error("loop body should be control dependent on the loop header")
	}
}

func TestGotoCFG(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i
      i = 0
      goto 20
      i = 1
 20   continue
      end
`)
	g := Build(u)
	gotoNode := g.NodeFor(u.Body[1])
	target := g.NodeFor(u.Body[3])
	if len(gotoNode.Succs) != 1 || gotoNode.Succs[0] != target {
		t.Errorf("goto succs = %v, want the labeled CONTINUE", gotoNode.Succs)
	}
	skipped := g.NodeFor(u.Body[2])
	for _, p := range skipped.Preds {
		if p == gotoNode {
			t.Error("fallthrough edge from goto must not exist")
		}
	}
}

func TestLoopTree(t *testing.T) {
	u := parseUnit(t, `
      program main
      integer i, j, k
      real a(10,10), b(10)
      do i = 1, 10
         do j = 1, 10
            a(i,j) = 0.0
         enddo
         b(i) = 1.0
      enddo
      do k = 1, 10
         b(k) = 2.0
      enddo
      end
`)
	tree := BuildLoopTree(u)
	if len(tree.Roots) != 2 {
		t.Fatalf("got %d root loops, want 2", len(tree.Roots))
	}
	if len(tree.All) != 3 {
		t.Fatalf("got %d loops total, want 3", len(tree.All))
	}
	outer := tree.Roots[0]
	if outer.Header().Name != "i" || outer.Depth != 1 {
		t.Errorf("outer = %v", outer)
	}
	if len(outer.Children) != 1 || outer.Children[0].Header().Name != "j" {
		t.Errorf("children = %v", outer.Children)
	}
	inner := outer.Children[0]
	vars := inner.NestVars()
	if len(vars) != 2 || vars[0].Name != "i" || vars[1].Name != "j" {
		t.Errorf("NestVars = %v", vars)
	}
	// Innermost lookup.
	assign := inner.Do.Body[0]
	if got := tree.Innermost(assign); got != inner {
		t.Errorf("Innermost(a(i,j)=0) = %v, want j loop", got)
	}
	bAssign := outer.Do.Body[1]
	if got := tree.Innermost(bAssign); got != outer {
		t.Errorf("Innermost(b(i)=1) = %v, want i loop", got)
	}
}

func TestDominatorProperties(t *testing.T) {
	// Entry dominates everything; every node postdominated by exit.
	u := parseUnit(t, `
      program main
      integer i, j
      j = 0
      do i = 1, 10
         if (i .gt. 5) then
            j = j + 1
         else
            j = j - 1
         endif
      enddo
      if (j .gt. 0) j = 0
      end
`)
	g := Build(u)
	dom := g.ComputeDominators()
	pdom := g.ComputePostdominators()
	for _, n := range g.Nodes {
		if !dom.Dominates(g.Entry, n) {
			t.Errorf("entry does not dominate %v", n)
		}
		if !pdom.Dominates(g.Exit, n) {
			t.Errorf("exit does not postdominate %v", n)
		}
		if !dom.Dominates(n, n) {
			t.Errorf("dominance not reflexive at %v", n)
		}
	}
}

func TestReturnEdges(t *testing.T) {
	u := parseUnit(t, `
      subroutine f(x)
      real x
      if (x .gt. 0.0) return
      x = -x
      return
      end
`)
	g := Build(u)
	// Both returns reach exit; the assignment is conditionally executed.
	ifStmt := u.Body[0].(*fortran.IfStmt)
	retNode := g.NodeFor(ifStmt.Then[0])
	if len(retNode.Succs) != 1 || retNode.Succs[0] != g.Exit {
		t.Errorf("return succs = %v", retNode.Succs)
	}
	cd := g.ComputeControlDeps()
	asg := g.NodeFor(u.Body[1])
	found := false
	for _, d := range cd.DepsOf(asg) {
		if d == g.NodeFor(ifStmt) {
			found = true
		}
	}
	if !found {
		t.Error("x=-x should be control dependent on the early-return IF")
	}
}
