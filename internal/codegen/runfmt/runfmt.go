// Package runfmt is the single definition of list-directed output
// formatting shared by every execution backend. The interpreter
// imports it directly; the compiled backend embeds this file verbatim
// into every generated program (as package gen/runfmt), so the two
// backends cannot drift apart: a PRINT * record is formatted by the
// same code whether the program is interpreted or compiled, and
// differential tests may compare output byte for byte.
//
// The package must stay dependency-free (standard library only) and
// self-contained in this one file — the code generator ships exactly
// this file, nothing else.
package runfmt

import (
	"strconv"
	"strings"
)

// Int formats an INTEGER value.
func Int(v int64) string { return strconv.FormatInt(v, 10) }

// Real formats a REAL or DOUBLE PRECISION value: the shortest decimal
// form that round-trips, exactly what fmt's %g verb produces for a
// float64.
func Real(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Logical formats a LOGICAL value the way list-directed output does.
func Logical(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

// Line renders one PRINT statement's already-formatted items as a
// complete output record: items joined by single spaces, newline
// terminated.
func Line(parts []string) string { return strings.Join(parts, " ") + "\n" }
