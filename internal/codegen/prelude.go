package codegen

// prelude is the runtime support emitted at the top of every
// generated program: buffered locked output through the shared runfmt
// package, whitespace-separated float input for READ, the generic
// array type replicating the interpreter's column-major indexing
// (per-dimension lower bounds, single-subscript linearized fallback,
// bounds checks), and the arithmetic helpers whose semantics mirror
// the interpreter's (runtime integer division-by-zero, plain-compare
// min/max without math.Max's NaN handling, fresh by-value cells).
const prelude = `package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"

	"gen/runfmt"
)

var workersFlag = flag.Int("workers", 1, "goroutines per DOALL loop (<=0 means GOMAXPROCS)")

func gWorkers() int64 {
	w := *workersFlag
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return int64(w)
}

// cI and cF lift literals to non-constant typed values so the Go
// compiler's constant arithmetic never rejects what the interpreter
// would have evaluated at runtime.
func cI(v int64) int64   { return v }
func cF(v float64) float64 { return v }

var (
	out   = bufio.NewWriter(os.Stdout)
	outMu sync.Mutex
)

func wln(parts ...string) {
	outMu.Lock()
	out.WriteString(runfmt.Line(parts))
	outMu.Unlock()
}

func flushOut() {
	outMu.Lock()
	out.Flush()
	outMu.Unlock()
}

func rtErr(msg string) {
	flushOut()
	fmt.Fprintln(os.Stderr, "runtime error: "+msg)
	os.Exit(2)
}

var (
	inVals []float64
	inPos  int
)

func readInput() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 64*1024), 1<<24)
	sc.Split(bufio.ScanWords)
	for sc.Scan() {
		v, err := strconv.ParseFloat(sc.Text(), 64)
		if err != nil {
			rtErr("bad input token " + sc.Text())
		}
		inVals = append(inVals, v)
	}
}

// rdF consumes the next input value; when input is exhausted it
// yields zero without advancing, like the interpreter's READ.
func rdF() float64 {
	if inPos < len(inVals) {
		v := inVals[inPos]
		inPos++
		return v
	}
	return 0
}

// arr is one array's storage: column-major data with per-dimension
// lower bounds and extents. Passing an arr by value shares the data
// (Fortran by-reference argument semantics) while letting callers
// substitute their own shape view.
type arr[T any] struct {
	data []T
	lo   []int64
	ext  []int64
}

// mkdim allocates an array from (lo, hi) bound pairs.
func mkdim[T any](bounds ...int64) arr[T] {
	var lo, ext []int64
	n := int64(1)
	for i := 0; i < len(bounds); i += 2 {
		l, h := bounds[i], bounds[i+1]
		if h < l {
			rtErr("array extent empty")
		}
		lo = append(lo, l)
		ext = append(ext, h-l+1)
		n *= h - l + 1
	}
	return arr[T]{data: make([]T, n), lo: lo, ext: ext}
}

func (a arr[T]) sz() int64 {
	n := int64(1)
	for _, e := range a.ext {
		n *= e
	}
	return n
}

// idx computes the column-major linear offset of the subscripts,
// supporting legacy single-subscript linearized access to
// multi-dimensional arrays.
func (a arr[T]) idx(subs ...int64) int64 {
	if len(subs) != len(a.ext) {
		if len(subs) == 1 {
			off := subs[0] - a.lo[0]
			if off < 0 || off >= a.sz() {
				rtErr("subscript " + strconv.FormatInt(subs[0], 10) + " out of bounds")
			}
			return off
		}
		rtErr("wrong number of subscripts")
	}
	var off, stride int64 = 0, 1
	for d := 0; d < len(subs); d++ {
		i := subs[d] - a.lo[d]
		if i < 0 || i >= a.ext[d] {
			rtErr("subscript " + strconv.FormatInt(subs[d], 10) + " (dim " + strconv.Itoa(d+1) + ") out of bounds")
		}
		off += i * stride
		stride *= a.ext[d]
	}
	return off
}

// tail aliases the storage from the given element onward with a
// one-dimensional unit-lower-bound shape (sequence association).
func (a arr[T]) tail(subs ...int64) arr[T] {
	off := a.idx(subs...)
	return arr[T]{data: a.data[off:], lo: []int64{1}, ext: []int64{a.sz() - off}}
}

// blank returns fresh zeroed storage with the same shape (private
// work arrays in DOALL workers).
func (a arr[T]) blank() arr[T] {
	return arr[T]{data: make([]T, len(a.data)), lo: a.lo, ext: a.ext}
}

// Fresh by-value cells for expression actuals.
func refI(v int64) *int64     { return &v }
func refF(v float64) *float64 { return &v }
func refB(v bool) *bool       { return &v }
func refS(v string) *string   { return &v }

func idiv(a, b int64) int64 {
	if b == 0 {
		rtErr("integer division by zero")
	}
	return a / b
}

func imod(a, b int64) int64 {
	if b == 0 {
		rtErr("mod by zero")
	}
	return a % b
}

func ipow(a, b int64) int64 {
	r := int64(1)
	for k := int64(0); k < b; k++ {
		r *= a
	}
	return r
}

func iabs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Plain-comparison min/max: NaN never wins, matching the
// interpreter's loop rather than math.Max's NaN propagation.
func imax(vs ...int64) int64 {
	best := vs[0]
	for _, v := range vs[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

func imin(vs ...int64) int64 {
	best := vs[0]
	for _, v := range vs[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

func fmax(vs ...float64) float64 {
	best := vs[0]
	for _, v := range vs[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

func fmin(vs ...float64) float64 {
	best := vs[0]
	for _, v := range vs[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

func fsign(a, b float64) float64 {
	m := math.Abs(a)
	if b < 0 {
		return -m
	}
	return m
}

func fdim(a, b float64) float64 {
	d := a - b
	if d < 0 {
		return 0
	}
	return d
}

var (
	_ = refI
	_ = refB
	_ = refS
	_ = idiv
	_ = imod
	_ = ipow
	_ = iabs
	_ = imax
	_ = imin
	_ = fmax
	_ = fmin
	_ = fsign
	_ = fdim
	_ = rdF
	_ = math.Pow
)

`
