package codegen

import (
	"strconv"
	"strings"

	"parascope/internal/fortran"
)

// expr lowers an expression, returning Go source text and the static
// type. Static types are decidable because every storage location has
// a declared type and the interpreter's convert-on-store keeps the
// dynamic type equal to it; the only runtime-type-dependent construct
// (INTEGER ** non-constant INTEGER) is declined.
func (g *gen) expr(e fortran.Expr) xpr {
	switch x := e.(type) {
	case *fortran.IntLit:
		return xpr{intLit(x.Val), tInt}
	case *fortran.RealLit:
		return xpr{floatLit(x.Val), tFloat}
	case *fortran.LogLit:
		if x.Val {
			return xpr{"true", tBool}
		}
		return xpr{"false", tBool}
	case *fortran.StrLit:
		return xpr{strconv.Quote(x.Val), tStr}
	case *fortran.VarRef:
		return g.ref(x)
	case *fortran.FuncCall:
		return g.call(x)
	case *fortran.Unary:
		v := g.expr(x.X)
		switch x.Op {
		case fortran.TokMinus:
			if v.t != tInt && v.t != tFloat {
				g.decline("unary minus on non-numeric value")
			}
			return xpr{"(-" + v.c + ")", v.t}
		case fortran.TokNot:
			if v.t != tBool {
				g.decline(".not. on non-logical value")
			}
			return xpr{"(!" + v.c + ")", tBool}
		default: // unary plus: the interpreter returns the operand unchanged
			return v
		}
	case *fortran.Binary:
		return g.binary(x)
	}
	g.decline("cannot lower expression %T", e)
	return xpr{}
}

func (g *gen) ref(x *fortran.VarRef) xpr {
	sym := x.Sym
	if sym == nil {
		g.decline("unresolved name %s", x.Name)
	}
	if sym.Kind == fortran.SymParam {
		v, ok := g.fold(sym.Value, 0)
		if !ok {
			g.decline("PARAMETER %s is not a foldable constant", sym.Name)
		}
		return convertC(v, g.symType(sym)).lit()
	}
	if sym.IsArray() {
		if len(x.Subs) == 0 {
			g.decline("whole-array reference %s in expression", sym.Name)
		}
		a := g.arrName(sym)
		return xpr{a + ".data[" + a + ".idx(" + g.subs(x.Subs) + ")]", g.symType(sym)}
	}
	return xpr{g.scalRef(sym), g.symType(sym)}
}

func (g *gen) binary(x *fortran.Binary) xpr {
	a := g.expr(x.X)
	// && and || short-circuit exactly like the interpreter's .and./.or.
	switch x.Op {
	case fortran.TokAnd, fortran.TokOr:
		b := g.expr(x.Y)
		if a.t != tBool || b.t != tBool {
			g.decline("logical operator on non-logical operands")
		}
		op := "&&"
		if x.Op == fortran.TokOr {
			op = "||"
		}
		return xpr{"(" + a.c + " " + op + " " + b.c + ")", tBool}
	}
	b := g.expr(x.Y)
	bothInt := a.t == tInt && b.t == tInt
	numeric := func() {
		if (a.t != tInt && a.t != tFloat) || (b.t != tInt && b.t != tFloat) {
			g.decline("arithmetic on non-numeric operands")
		}
	}
	switch x.Op {
	case fortran.TokPlus:
		numeric()
		if bothInt {
			return xpr{"(" + a.c + " + " + b.c + ")", tInt}
		}
		return xpr{"(" + g.toF(a) + " + " + g.toF(b) + ")", tFloat}
	case fortran.TokMinus:
		numeric()
		if bothInt {
			return xpr{"(" + a.c + " - " + b.c + ")", tInt}
		}
		return xpr{"(" + g.toF(a) + " - " + g.toF(b) + ")", tFloat}
	case fortran.TokStar:
		numeric()
		if bothInt {
			return xpr{"(" + a.c + " * " + b.c + ")", tInt}
		}
		return xpr{"(" + g.toF(a) + " * " + g.toF(b) + ")", tFloat}
	case fortran.TokSlash:
		numeric()
		if bothInt {
			return xpr{"idiv(" + a.c + ", " + b.c + ")", tInt}
		}
		return xpr{"(" + g.toF(a) + " / " + g.toF(b) + ")", tFloat}
	case fortran.TokPower:
		numeric()
		if bothInt {
			// The result's *type* depends on the exponent's runtime
			// sign in the interpreter, so the exponent must fold.
			k, ok := g.fold(x.Y, 0)
			if !ok || k.t != tInt {
				g.decline("INTEGER ** non-constant INTEGER exponent")
			}
			if k.i >= 0 {
				return xpr{"ipow(" + a.c + ", " + intLit(k.i) + ")", tInt}
			}
			return xpr{"math.Pow(" + g.toF(a) + ", " + g.toF(b) + ")", tFloat}
		}
		return xpr{"math.Pow(" + g.toF(a) + ", " + g.toF(b) + ")", tFloat}
	case fortran.TokLt:
		return g.compare(a, b, "<")
	case fortran.TokLe:
		return g.compare(a, b, "<=")
	case fortran.TokGt:
		return g.compare(a, b, ">")
	case fortran.TokGe:
		return g.compare(a, b, ">=")
	case fortran.TokEqEq:
		return g.compare(a, b, "==")
	case fortran.TokNe:
		return g.compare(a, b, "!=")
	case fortran.TokConcat:
		if a.t != tStr || b.t != tStr {
			g.decline("// concatenation of non-character operands")
		}
		return xpr{"(" + a.c + " + " + b.c + ")", tStr}
	}
	g.decline("unknown operator")
	return xpr{}
}

func (g *gen) compare(a, b xpr, op string) xpr {
	switch {
	case a.t == tInt && b.t == tInt:
		return xpr{"(" + a.c + " " + op + " " + b.c + ")", tBool}
	case a.t == tStr && b.t == tStr:
		return xpr{"(" + a.c + " " + op + " " + b.c + ")", tBool}
	case a.t == tStr || b.t == tStr || a.t == tBool || b.t == tBool:
		g.decline("comparison of mixed or non-orderable types")
	}
	return xpr{"(" + g.toF(a) + " " + op + " " + g.toF(b) + ")", tBool}
}

// ---------------------------------------------------------------------------
// Calls

func (g *gen) call(x *fortran.FuncCall) xpr {
	if x.Callee != nil {
		res := x.Callee.Lookup(x.Callee.Name)
		if res == nil || res.Kind != fortran.SymScalar {
			g.decline("function %s has no scalar result variable", x.Callee.Name)
		}
		return xpr{mangleUnit(x.Callee.Name) + "(" + g.bindArgs(x.Callee, x.Args) + ")", g.symType(res)}
	}
	if _, ok := fortran.Intrinsics[x.Name]; ok {
		return g.intrinsic(x)
	}
	g.decline("call to external function %s", x.Name)
	return xpr{}
}

// bindArgs lowers an actual-argument list following the interpreter's
// binding rules: variable scalars by reference, whole arrays and
// array-element tails by storage sharing, everything else into a
// fresh cell. Static types must agree with the formals; otherwise the
// callee's statically-typed code would diverge from the
// interpreter's dynamic typing.
func (g *gen) bindArgs(callee *fortran.Unit, actuals []fortran.Expr) string {
	if len(actuals) < len(callee.Args) {
		g.decline("%s: call with %d args for %d formals", callee.Name, len(actuals), len(callee.Args))
	}
	parts := make([]string, 0, len(callee.Args))
	// Actuals beyond the formal list are dropped unevaluated, exactly
	// like the interpreter's binder.
	for i, formal := range callee.Args {
		a := actuals[i]
		ft := g.symType(formal)
		if vr, ok := a.(*fortran.VarRef); ok && vr.Sym != nil && vr.Sym.Kind != fortran.SymParam {
			switch {
			case vr.Sym.IsArray() && len(vr.Subs) == 0:
				if formal.Kind != fortran.SymArray {
					g.decline("%s: whole array %s passed to scalar formal", callee.Name, vr.Sym.Name)
				}
				if g.symType(vr.Sym) != ft {
					g.decline("%s: array %s element type mismatch at call boundary", callee.Name, vr.Sym.Name)
				}
				parts = append(parts, g.arrName(vr.Sym))
				continue
			case vr.Sym.IsArray() && len(vr.Subs) > 0 && formal.Kind == fortran.SymArray:
				// Sequence association: alias the tail of the storage.
				if g.symType(vr.Sym) != ft {
					g.decline("%s: array %s element type mismatch at call boundary", callee.Name, vr.Sym.Name)
				}
				parts = append(parts, g.arrName(vr.Sym)+".tail("+g.subs(vr.Subs)+")")
				continue
			case !vr.Sym.IsArray() && len(vr.Subs) == 0:
				if formal.Kind != fortran.SymScalar {
					g.decline("%s: scalar %s passed to array formal", callee.Name, vr.Sym.Name)
				}
				if g.symType(vr.Sym) != ft {
					g.decline("%s: scalar %s type mismatch at call boundary", callee.Name, vr.Sym.Name)
				}
				if vr.Sym.Dummy {
					parts = append(parts, mangleVar(vr.Sym.Name))
				} else {
					parts = append(parts, "&"+g.scalRef(vr.Sym))
				}
				continue
			}
		}
		// Expression actual: evaluated into a fresh cell (by value).
		if formal.Kind != fortran.SymScalar {
			g.decline("%s: expression passed to array formal %s", callee.Name, formal.Name)
		}
		v := g.expr(a)
		if v.t != ft {
			g.decline("%s: expression argument type mismatch (want %s, got %s)",
				callee.Name, ft.goName(), v.t.goName())
		}
		parts = append(parts, refFn(ft)+"("+v.c+")")
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Intrinsics — one case per entry in fortran.Intrinsics, replicating
// the interpreter's result-type and conversion rules.

func (g *gen) intrinsic(x *fortran.FuncCall) xpr {
	name := x.Name
	args := make([]xpr, len(x.Args))
	for i, a := range x.Args {
		args[i] = g.expr(a)
	}
	need := func(n int) {
		if len(args) != n {
			g.decline("%s expects %d args, got %d", name, n, len(args))
		}
	}
	one := func(fn string) xpr {
		need(1)
		return xpr{fn + "(" + g.toF(args[0]) + ")", tFloat}
	}
	switch name {
	case "abs":
		need(1)
		if args[0].t == tInt {
			return xpr{"iabs(" + args[0].c + ")", tInt}
		}
		return xpr{"math.Abs(" + g.toF(args[0]) + ")", tFloat}
	case "iabs":
		need(1)
		return xpr{"iabs(" + g.toInt(args[0]) + ")", tInt}
	case "sqrt":
		return one("math.Sqrt")
	case "exp":
		return one("math.Exp")
	case "log":
		return one("math.Log")
	case "log10":
		return one("math.Log10")
	case "sin":
		return one("math.Sin")
	case "cos":
		return one("math.Cos")
	case "tan":
		return one("math.Tan")
	case "atan":
		return one("math.Atan")
	case "asin":
		return one("math.Asin")
	case "acos":
		return one("math.Acos")
	case "sinh":
		return one("math.Sinh")
	case "cosh":
		return one("math.Cosh")
	case "tanh":
		return one("math.Tanh")
	case "atan2":
		need(2)
		return xpr{"math.Atan2(" + g.toF(args[0]) + ", " + g.toF(args[1]) + ")", tFloat}
	case "max", "amax1", "max0":
		return g.minMax(name, args, true)
	case "min", "amin1", "min0":
		return g.minMax(name, args, false)
	case "mod", "amod":
		need(2)
		if args[0].t == tInt && args[1].t == tInt {
			return xpr{"imod(" + args[0].c + ", " + args[1].c + ")", tInt}
		}
		return xpr{"math.Mod(" + g.toF(args[0]) + ", " + g.toF(args[1]) + ")", tFloat}
	case "sign":
		need(2)
		c := "fsign(" + g.toF(args[0]) + ", " + g.toF(args[1]) + ")"
		if args[0].t == tInt {
			return xpr{"int64(" + c + ")", tInt}
		}
		return xpr{c, tFloat}
	case "dim":
		need(2)
		c := "fdim(" + g.toF(args[0]) + ", " + g.toF(args[1]) + ")"
		if args[0].t == tInt {
			return xpr{"int64(" + c + ")", tInt}
		}
		return xpr{c, tFloat}
	case "int", "ifix":
		need(1)
		return xpr{"int64(" + g.toF(args[0]) + ")", tInt}
	case "nint":
		need(1)
		return xpr{"int64(math.Round(" + g.toF(args[0]) + "))", tInt}
	case "real", "float", "sngl", "dble":
		need(1)
		return xpr{g.toF(args[0]), tFloat}
	}
	g.decline("unknown intrinsic %s", name)
	return xpr{}
}

func (g *gen) minMax(name string, args []xpr, wantMax bool) xpr {
	if len(args) < 2 {
		g.decline("%s needs at least 2 args", name)
	}
	allInt := true
	for _, a := range args {
		if a.t != tInt {
			allInt = false
		}
		if a.t != tInt && a.t != tFloat {
			g.decline("%s on non-numeric argument", name)
		}
	}
	if name == "max0" || name == "min0" {
		allInt = true
	}
	if name == "amax1" || name == "amin1" {
		allInt = false
	}
	fn := map[bool]map[bool]string{
		true:  {true: "imax", false: "imin"},
		false: {true: "fmax", false: "fmin"},
	}[allInt][wantMax]
	parts := make([]string, len(args))
	for i, a := range args {
		if allInt {
			parts[i] = g.toInt(a)
		} else {
			parts[i] = g.toF(a)
		}
	}
	t := tFloat
	if allInt {
		t = tInt
	}
	return xpr{fn + "(" + strings.Join(parts, ", ") + ")", t}
}
