package codegen

import (
	"context"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parascope/internal/execguard"
	"parascope/internal/faultpoint"
	"parascope/internal/fortran"
)

// genVersion is folded into the build-cache key so stale binaries are
// never reused after the generator's lowering rules change.
const genVersion = "pedc-1"

//go:embed runfmt/runfmt.go
var runfmtSrc string

// Artifact is a compiled workload: the generated source, the cache
// directory holding the module, and the built binary.
type Artifact struct {
	Source string // generated Go source for the main package
	Dir    string // module directory inside the build cache
	Bin    string // path of the built executable
	Hash   string // cache key (source hash + generator version)
	Cached bool   // true when a previously built binary was reused
}

// RunResult captures one execution of a compiled workload.
type RunResult struct {
	Output string        // captured stdout
	Wall   time.Duration // wall-clock time of the process
}

// manifest records what a cache entry should contain; it is written
// into the staging dir before the atomic rename, so any entry missing
// or mismatching it is by definition corrupt and never trusted.
type manifest struct {
	SHA256 string `json:"sha256"` // hex digest of the prog binary
	Size   int64  `json:"size"`   // byte length of the prog binary
	Gen    string `json:"gen"`    // generator version that built it
}

const manifestName = "manifest.json"

// buildFlight dedups concurrent cold builds: N requests for the same
// uncached program trigger exactly one go build.
var buildFlight execguard.Group

// janitorMu serializes cache sweeps so concurrent builds don't race
// over the same eviction set.
var janitorMu sync.Mutex

// cacheRoot returns the directory compiled modules live under,
// preferring the user cache dir and falling back to the system temp
// directory. An explicit dir overrides both.
func cacheRoot(dir string) string {
	if dir != "" {
		return dir
	}
	if c, err := os.UserCacheDir(); err == nil {
		return filepath.Join(c, "parascope-pedc")
	}
	return filepath.Join(os.TempDir(), "parascope-pedc")
}

// SourceHash returns the cache key for a parsed program: the hash of
// its printed form salted with the generator version, so semantically
// identical edits (comment/whitespace churn the printer drops) hit
// the same cache entry.
func SourceHash(f *fortran.File) string {
	h := sha256.Sum256([]byte(genVersion + "\x00" + fortran.Print(f)))
	return hex.EncodeToString(h[:16])
}

// Build lowers the program to Go and compiles it into the cache,
// reusing a previously built binary when the source hash matches AND
// the entry's manifest checksum verifies — corrupt entries are
// quarantined to <dir>.bad and transparently rebuilt. Concurrent
// builds of the same program are deduplicated to one go build.
// cacheDir may be empty to use the default location; g may be nil for
// default limits and no telemetry.
func Build(ctx context.Context, f *fortran.File, cacheDir string, g *execguard.Governor) (*Artifact, error) {
	src, err := Generate(f)
	if err != nil {
		return nil, err
	}
	hash := SourceHash(f)
	dir := filepath.Join(cacheRoot(cacheDir), hash)
	bin := filepath.Join(dir, "prog")

	v, err, shared := buildFlight.Do(dir, func() (any, error) {
		art := &Artifact{Source: src, Dir: dir, Bin: bin, Hash: hash}
		if verifyEntry(dir, bin, hash, g) {
			art.Cached = true
			g.Event("build_cache_hit", "")
			// Refresh recency so the janitor's LRU keeps hot entries.
			now := time.Now()
			_ = os.Chtimes(dir, now, now)
			return art, nil
		}
		start := time.Now()
		if err := compile(ctx, src, dir, bin, g); err != nil {
			g.Event("build_fail", "")
			return nil, err
		}
		g.Event("build", "")
		g.Timing("build", "", time.Since(start))
		janitor(filepath.Dir(dir), g)
		return art, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		g.Event("build_dedup", "")
	}
	return v.(*Artifact), nil
}

// verifyEntry reports whether the cache entry at dir holds a binary
// matching its manifest. Any failure — missing manifest (legacy or
// half-written entry), size or checksum mismatch, injected fault —
// quarantines the entry and returns false so the caller rebuilds.
func verifyEntry(dir, bin, hash string, g *execguard.Governor) bool {
	fi, err := os.Stat(bin)
	if err != nil || !fi.Mode().IsRegular() {
		return false
	}
	ok := func() bool {
		if err := faultpoint.Hit(faultpoint.CacheVerify, hash); err != nil {
			return false
		}
		data, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			return false
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.Gen != genVersion {
			return false
		}
		if fi.Size() != m.Size {
			return false
		}
		sum, err := fileSHA256(bin)
		if err != nil {
			return false
		}
		return sum == m.SHA256
	}()
	if !ok {
		quarantine(dir, g)
	}
	return ok
}

// quarantine moves a corrupt cache entry aside to <dir>.bad so it is
// never executed again but remains inspectable until the janitor
// sweeps it; if the rename fails the entry is deleted outright.
func quarantine(dir string, g *execguard.Governor) {
	g.Event("build_verify_fail", "")
	bad := dir + ".bad"
	_ = os.RemoveAll(bad)
	if err := os.Rename(dir, bad); err != nil {
		_ = os.RemoveAll(dir)
	}
}

func fileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// compile writes the module into a staging directory, runs go build
// under supervision (its own timeout, group kill — a hung toolchain
// cannot wedge the daemon), writes the manifest, and atomically
// renames the result into place so concurrent builds of the same
// program never observe a half-written module.
func compile(ctx context.Context, src, dir, bin string, g *execguard.Governor) error {
	hash := filepath.Base(dir)
	if err := faultpoint.Hit(faultpoint.ExecBuild, hash); err != nil {
		return fmt.Errorf("codegen: go build failed: %w", err)
	}
	root := filepath.Dir(dir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("codegen: create cache: %w", err)
	}
	stage, err := os.MkdirTemp(root, "build-")
	if err != nil {
		return fmt.Errorf("codegen: stage build: %w", err)
	}
	defer os.RemoveAll(stage)

	files := map[string]string{
		"go.mod":           "module gen\n\ngo 1.24\n",
		"main.go":          src,
		"runfmt/runfmt.go": runfmtSrc,
	}
	for name, content := range files {
		p := filepath.Join(stage, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return fmt.Errorf("codegen: stage build: %w", err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			return fmt.Errorf("codegen: stage build: %w", err)
		}
	}

	cmd := exec.Command("go", "build", "-o", "prog", ".")
	cmd.Dir = stage
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOPROXY=off", "GOFLAGS=-mod=mod")
	// The build governor: its own wall budget, no output caps (build
	// diagnostics must survive whole), no RSS watchdog for the
	// toolchain.
	bg := g.With(execguard.Limits{Timeout: g.BuildTimeout(), OutputBytes: -1, StderrBytes: -1, RSSBytes: -1})
	res, err := execguard.Supervise(ctx, bg, cmd)
	if err != nil {
		if errors.Is(err, execguard.ErrTimeout) || ctx.Err() != nil {
			return fmt.Errorf("codegen: go build: %w", err)
		}
		stderr := ""
		if res != nil {
			stderr = res.Stderr
		}
		return fmt.Errorf("codegen: go build failed: %v\n%s", err, stderr)
	}

	stagedBin := filepath.Join(stage, "prog")
	sum, err := fileSHA256(stagedBin)
	if err != nil {
		return fmt.Errorf("codegen: hash binary: %w", err)
	}
	fi, err := os.Stat(stagedBin)
	if err != nil {
		return fmt.Errorf("codegen: stat binary: %w", err)
	}
	mdata, _ := json.Marshal(manifest{SHA256: sum, Size: fi.Size(), Gen: genVersion})
	if err := os.WriteFile(filepath.Join(stage, manifestName), mdata, 0o644); err != nil {
		return fmt.Errorf("codegen: write manifest: %w", err)
	}

	if err := os.Rename(stage, dir); err != nil {
		// A concurrent build won the rename; its binary is equivalent.
		if _, statErr := os.Stat(bin); statErr == nil {
			return nil
		}
		return fmt.Errorf("codegen: install build: %w", err)
	}
	return nil
}

// Janitor retention windows: staging dirs a build abandoned (crash
// mid-compile) and quarantined entries are garbage after these ages.
const (
	staleStageAge = time.Hour
	staleBadAge   = 24 * time.Hour
)

// janitor sweeps the cache root: stale build-* staging dirs, old *.bad
// quarantine dirs, and LRU-evicts verified entries beyond the
// governor's cache bound. It runs after cold builds — the only time
// the cache grows.
func janitor(root string, g *execguard.Governor) {
	janitorMu.Lock()
	defer janitorMu.Unlock()
	entries, err := os.ReadDir(root)
	if err != nil {
		return
	}
	type cached struct {
		path  string
		mtime time.Time
	}
	var live []cached
	now := time.Now()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		p := filepath.Join(root, e.Name())
		fi, err := e.Info()
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name(), "build-"):
			if now.Sub(fi.ModTime()) > staleStageAge {
				_ = os.RemoveAll(p)
			}
		case strings.HasSuffix(e.Name(), ".bad"):
			if now.Sub(fi.ModTime()) > staleBadAge {
				_ = os.RemoveAll(p)
			}
		default:
			live = append(live, cached{path: p, mtime: fi.ModTime()})
		}
	}
	max := g.CacheEntries()
	if len(live) <= max {
		return
	}
	sort.Slice(live, func(i, j int) bool { return live[i].mtime.Before(live[j].mtime) })
	for _, c := range live[:len(live)-max] {
		_ = os.RemoveAll(c.path)
		g.Event("build_janitor_evict", "")
	}
}

// FormatInput renders READ input values in the exact token form the
// generated program's stdin reader parses back losslessly.
func FormatInput(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, "\n") + "\n"
}

// Run executes a built artifact with the given DOALL worker count and
// READ input under the governor's supervision: process-group spawn,
// wall timeout, output caps, RSS watchdog. Kills surface as the
// guard's typed errors (execguard.ErrTimeout etc.); a program that
// exits non-zero on its own surfaces its stderr.
func Run(ctx context.Context, art *Artifact, workers int, input []float64, g *execguard.Governor) (*RunResult, error) {
	if err := faultpoint.Hit(faultpoint.ExecRun, art.Hash); err != nil {
		return nil, fmt.Errorf("codegen: run: %w", err)
	}
	cmd := exec.Command(art.Bin, "-workers="+strconv.Itoa(workers))
	cmd.Stdin = strings.NewReader(FormatInput(input))
	res, err := execguard.Supervise(ctx, g, cmd)
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	return &RunResult{Output: res.Stdout, Wall: res.Wall}, nil
}

// Exec builds (or reuses) the compiled form and runs it once.
func Exec(ctx context.Context, f *fortran.File, workers int, input []float64, cacheDir string, g *execguard.Governor) (*RunResult, error) {
	art, err := Build(ctx, f, cacheDir, g)
	if err != nil {
		return nil, err
	}
	return Run(ctx, art, workers, input, g)
}
