package codegen

import (
	"bytes"
	"context"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"parascope/internal/fortran"
)

// genVersion is folded into the build-cache key so stale binaries are
// never reused after the generator's lowering rules change.
const genVersion = "pedc-1"

//go:embed runfmt/runfmt.go
var runfmtSrc string

// Artifact is a compiled workload: the generated source, the cache
// directory holding the module, and the built binary.
type Artifact struct {
	Source string // generated Go source for the main package
	Dir    string // module directory inside the build cache
	Bin    string // path of the built executable
	Hash   string // cache key (source hash + generator version)
	Cached bool   // true when a previously built binary was reused
}

// RunResult captures one execution of a compiled workload.
type RunResult struct {
	Output string        // captured stdout
	Wall   time.Duration // wall-clock time of the process
}

// cacheRoot returns the directory compiled modules live under,
// preferring the user cache dir and falling back to the system temp
// directory. An explicit dir overrides both.
func cacheRoot(dir string) string {
	if dir != "" {
		return dir
	}
	if c, err := os.UserCacheDir(); err == nil {
		return filepath.Join(c, "parascope-pedc")
	}
	return filepath.Join(os.TempDir(), "parascope-pedc")
}

// SourceHash returns the cache key for a parsed program: the hash of
// its printed form salted with the generator version, so semantically
// identical edits (comment/whitespace churn the printer drops) hit
// the same cache entry.
func SourceHash(f *fortran.File) string {
	h := sha256.Sum256([]byte(genVersion + "\x00" + fortran.Print(f)))
	return hex.EncodeToString(h[:16])
}

// Build lowers the program to Go and compiles it into the cache,
// reusing a previously built binary when the source hash matches.
// cacheDir may be empty to use the default location.
func Build(f *fortran.File, cacheDir string) (*Artifact, error) {
	src, err := Generate(f)
	if err != nil {
		return nil, err
	}
	hash := SourceHash(f)
	dir := filepath.Join(cacheRoot(cacheDir), hash)
	bin := filepath.Join(dir, "prog")
	art := &Artifact{Source: src, Dir: dir, Bin: bin, Hash: hash}
	if fi, err := os.Stat(bin); err == nil && fi.Mode().IsRegular() {
		art.Cached = true
		return art, nil
	}
	if err := compile(src, dir, bin); err != nil {
		return nil, err
	}
	return art, nil
}

// compile writes the module into a staging directory, runs go build,
// and atomically renames the result into place so concurrent builds
// of the same program never observe a half-written module.
func compile(src, dir, bin string) error {
	root := filepath.Dir(dir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("codegen: create cache: %w", err)
	}
	stage, err := os.MkdirTemp(root, "build-")
	if err != nil {
		return fmt.Errorf("codegen: stage build: %w", err)
	}
	defer os.RemoveAll(stage)

	files := map[string]string{
		"go.mod":           "module gen\n\ngo 1.24\n",
		"main.go":          src,
		"runfmt/runfmt.go": runfmtSrc,
	}
	for name, content := range files {
		p := filepath.Join(stage, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			return fmt.Errorf("codegen: stage build: %w", err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			return fmt.Errorf("codegen: stage build: %w", err)
		}
	}

	cmd := exec.Command("go", "build", "-o", "prog", ".")
	cmd.Dir = stage
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOPROXY=off", "GOFLAGS=-mod=mod")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("codegen: go build failed: %v\n%s", err, errb.String())
	}
	if err := os.Rename(stage, dir); err != nil {
		// A concurrent build won the rename; its binary is equivalent.
		if _, statErr := os.Stat(bin); statErr == nil {
			return nil
		}
		return fmt.Errorf("codegen: install build: %w", err)
	}
	return nil
}

// FormatInput renders READ input values in the exact token form the
// generated program's stdin reader parses back losslessly.
func FormatInput(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, "\n") + "\n"
}

// Run executes a built artifact with the given DOALL worker count and
// READ input, capturing stdout and wall-clock time. A non-zero exit
// is surfaced as an error carrying the program's stderr.
func Run(ctx context.Context, art *Artifact, workers int, input []float64) (*RunResult, error) {
	cmd := exec.CommandContext(ctx, art.Bin, "-workers="+strconv.Itoa(workers))
	cmd.Stdin = strings.NewReader(FormatInput(input))
	var outb, errb bytes.Buffer
	cmd.Stdout = &outb
	cmd.Stderr = &errb
	start := time.Now()
	err := cmd.Run()
	wall := time.Since(start)
	if ctx.Err() != nil {
		return nil, fmt.Errorf("codegen: run timed out: %w", ctx.Err())
	}
	if err != nil {
		msg := strings.TrimSpace(errb.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("codegen: %s", msg)
	}
	return &RunResult{Output: outb.String(), Wall: wall}, nil
}

// Exec builds (or reuses) the compiled form and runs it once.
func Exec(ctx context.Context, f *fortran.File, workers int, input []float64, cacheDir string) (*RunResult, error) {
	art, err := Build(f, cacheDir)
	if err != nil {
		return nil, err
	}
	return Run(ctx, art, workers, input)
}
