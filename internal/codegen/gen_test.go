package codegen

import (
	"context"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"sync"
	"testing"
	"time"

	"parascope/internal/fortran"
	"parascope/internal/interp"
)

func parse(t testing.TB, src string) *fortran.File {
	t.Helper()
	f, err := fortran.Parse("test.f", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// runBoth executes a program under the interpreter and compiled,
// failing unless the outputs are byte-identical.
func runBoth(t *testing.T, cache, src string, workers int, input []float64) string {
	t.Helper()
	f := parse(t, src)
	want, err := interp.RunCapture(f, workers, input)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	got, err := Exec(ctx, f, workers, input, cache, nil)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if got.Output != want {
		t.Fatalf("output mismatch\ncompiled:\n%q\ninterp:\n%q", got.Output, want)
	}
	return got.Output
}

func TestCompiledSnippets(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()

	t.Run("goto-and-labels", func(t *testing.T) {
		runBoth(t, cache, `
      program p
      integer i, n
      n = 0
      i = 0
   10 continue
      i = i + 1
      n = n + i*i
      if (i .lt. 5) goto 10
      print *, n, i
      end
`, 1, nil)
	})

	t.Run("call-and-function", func(t *testing.T) {
		runBoth(t, cache, `
      program p
      real a(10), s
      integer i
      do 10 i = 1, 10
        a(i) = real(i) * 1.5
   10 continue
      call scale(a, 10, 2.0)
      s = total(a, 10)
      print *, s
      end
      subroutine scale(x, n, f)
      real x(n), f
      integer n, i
      do 20 i = 1, n
        x(i) = x(i) * f
   20 continue
      end
      function total(x, n)
      real total, x(n)
      integer n, i
      total = 0.0
      do 30 i = 1, n
        total = total + x(i)
   30 continue
      end
`, 1, nil)
	})

	t.Run("common-and-read", func(t *testing.T) {
		runBoth(t, cache, `
      program p
      common /blk/ c(4), k
      real c
      integer k, i
      real v
      read(*,*) v
      k = 3
      do 10 i = 1, 4
        c(i) = v + real(i)
   10 continue
      call show
      end
      subroutine show
      common /blk/ c(4), k
      real c
      integer k, i
      do 20 i = 1, k
        print *, c(i)
   20 continue
      end
`, 1, []float64{2.5})
	})

	t.Run("intrinsics", func(t *testing.T) {
		runBoth(t, cache, `
      program p
      real x, y
      integer i, j
      x = -3.75
      y = 2.0
      i = -7
      j = 3
      print *, abs(x), sqrt(y), mod(i, j), max(i, j), amin1(x, y)
      print *, sign(x, y), dim(y, x), nint(x), int(x), float(j)
      end
`, 1, nil)
	})

	t.Run("stop-flushes", func(t *testing.T) {
		runBoth(t, cache, `
      program p
      print *, 1
      stop
      print *, 2
      end
`, 1, nil)
	})
}

func TestDeclines(t *testing.T) {
	cases := []struct {
		name, src, reason string
	}{
		{"external-call", `
      program p
      call nosuch(1)
      end
`, "unknown subroutine"},
		{"power-nonconst", `
      program p
      integer i, j, k
      i = 2
      j = 3
      k = i ** j
      print *, k
      end
`, "exponent"},
		{"whole-array-expr", `
      program p
      real a(3), b(3)
      b = a
      end
`, "whole-array"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := parse(t, c.src)
			_, err := Generate(f)
			if !IsDeclined(err) {
				t.Fatalf("want declined, got %v", err)
			}
			if !strings.Contains(err.Error(), c.reason) {
				t.Fatalf("reason %q does not mention %q", err, c.reason)
			}
		})
	}
}

func TestBuildCache(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	src := `
      program p
      print *, 42
      end
`
	f := parse(t, src)
	a1, err := Build(context.Background(), f, cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Cached {
		t.Fatal("first build reported cached")
	}
	a2, err := Build(context.Background(), parse(t, src), cache, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Cached {
		t.Fatal("second build did not hit the cache")
	}
	if a1.Hash != a2.Hash {
		t.Fatalf("hash changed across identical builds: %s vs %s", a1.Hash, a2.Hash)
	}
	other := parse(t, strings.Replace(src, "42", "43", 1))
	if h := SourceHash(other); h == a1.Hash {
		t.Fatal("different programs share a hash")
	}
}

func TestRuntimeErrorPropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	f := parse(t, `
      program p
      integer i, j
      i = 1
      j = 0
      print *, i / j
      end
`)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := Exec(ctx, f, 1, nil, cache, nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("want division-by-zero error, got %v", err)
	}
}

// typeCheckGenerated verifies a generated program against the full Go
// type system (not just the grammar), resolving the gen/runfmt import
// to the embedded runfmt source.
var (
	runfmtPkgOnce sync.Once
	runfmtPkg     *types.Package
	runfmtPkgErr  error
	// One shared gc importer: it caches stdlib packages internally,
	// which keeps repeated type-checks (the fuzz loop) fast.
	stdImporter   = importer.Default()
	stdImporterMu sync.Mutex
)

type genImporter struct{}

func (genImporter) Import(path string) (*types.Package, error) {
	if path == "gen/runfmt" {
		runfmtPkgOnce.Do(func() {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, "runfmt.go", runfmtSrc, 0)
			if err != nil {
				runfmtPkgErr = err
				return
			}
			conf := types.Config{Importer: genImporter{}}
			runfmtPkg, runfmtPkgErr = conf.Check("gen/runfmt", fset, []*ast.File{f}, nil)
		})
		return runfmtPkg, runfmtPkgErr
	}
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	return stdImporter.Import(path)
}

func typeCheckGenerated(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "main.go", src, 0)
	if err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	conf := types.Config{Importer: genImporter{}}
	if _, err := conf.Check("main", fset, []*ast.File{f}, nil); err != nil {
		t.Fatalf("generated source does not type-check: %v\n%s", err, src)
	}
}

// FuzzCodegen asserts the generator's core contract: for any source
// the Fortran front end accepts, Generate either declines with a
// reason or emits Go that compiles (checked here with go/types, which
// catches everything short of linking).
func FuzzCodegen(f *testing.F) {
	seeds := []string{
		`
      program p
      integer i, n
      real s
      s = 0.0
      n = 10
      do 10 i = 1, n
        s = s + real(i) ** 2
   10 continue
      print *, s
      end
`,
		`
      program p
      integer i
      i = 0
   10 i = i + 1
      if (i .lt. 3) goto 10
      print *, i
      end
`,
		`
      program p
      real a(5)
      integer i
      read(*,*) a(1)
      do 10 i = 2, 5
        a(i) = a(i-1) * 2.0
   10 continue
      print *, a(5)
      end
`,
		`
      program p
      common /c/ x
      real x
      x = 1.5
      call bump
      print *, x
      end
      subroutine bump
      common /c/ x
      real x
      x = x + 1.0
      end
`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := fortran.Parse("fuzz.f", src)
		if err != nil {
			t.Skip()
		}
		out, err := Generate(file)
		if err != nil {
			if !IsDeclined(err) {
				t.Fatalf("generator failed without declining: %v", err)
			}
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatal("declined without a reason")
			}
			return
		}
		typeCheckGenerated(t, out)
	})
}
