package codegen

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"parascope/internal/execguard"
)

// buildSink records build-pipeline telemetry for assertions.
type buildSink struct {
	mu     sync.Mutex
	events map[string]int
}

func newBuildSink() *buildSink { return &buildSink{events: map[string]int{}} }

func (s *buildSink) ExecEvent(name, label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events[name]++
}

func (s *buildSink) ExecTiming(name, label string, d time.Duration) {}
func (s *buildSink) ExecInFlight(delta int)                         {}

func (s *buildSink) count(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events[name]
}

const guardSrc = `
      program p
      print *, 7
      end
`

func TestCorruptCacheEntryQuarantinedAndRebuilt(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	sink := newBuildSink()
	g := execguard.New(execguard.Config{Sink: sink})
	ctx := context.Background()

	a1, err := Build(ctx, parse(t, guardSrc), cache, g)
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	// Flip one byte in the cached binary without changing its size —
	// only the manifest checksum can catch this.
	data, err := os.ReadFile(a1.Bin)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(a1.Bin, data, 0o755); err != nil {
		t.Fatal(err)
	}

	a2, err := Build(ctx, parse(t, guardSrc), cache, g)
	if err != nil {
		t.Fatalf("rebuild after corruption: %v", err)
	}
	if a2.Cached {
		t.Fatal("corrupt cache entry was reused")
	}
	if sink.count("build_verify_fail") == 0 {
		t.Fatal("no build_verify_fail event emitted")
	}
	if _, err := os.Stat(a1.Dir + ".bad"); err != nil {
		t.Fatalf("corrupt entry not quarantined to %s.bad: %v", a1.Dir, err)
	}
	// The rebuilt binary must actually run.
	rr, err := Run(ctx, a2, 1, nil, g)
	if err != nil {
		t.Fatalf("run rebuilt binary: %v", err)
	}
	if !strings.Contains(rr.Output, "7") {
		t.Fatalf("rebuilt binary output = %q", rr.Output)
	}
	// A third build reuses the fresh entry — verification passes now.
	a3, err := Build(ctx, parse(t, guardSrc), cache, g)
	if err != nil {
		t.Fatal(err)
	}
	if !a3.Cached {
		t.Fatal("rebuilt entry did not verify on reuse")
	}
}

func TestConcurrentColdBuildsDeduplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	sink := newBuildSink()
	g := execguard.New(execguard.Config{Sink: sink})
	f := parse(t, guardSrc)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	arts := make([]*Artifact, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = Build(context.Background(), f, cache, g)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
	}
	// Exactly one go build must have run; everyone else either joined
	// the in-flight build (dedup) or arrived late to a verified cache
	// hit. Every call is accounted for by one of the three.
	if got := sink.count("build"); got != 1 {
		t.Fatalf("go build ran %d times for one program, want exactly 1", got)
	}
	total := sink.count("build") + sink.count("build_dedup") + sink.count("build_cache_hit")
	if total != n {
		t.Fatalf("build+dedup+cache_hit = %d, want %d (one outcome per call)", total, n)
	}
	for i := 1; i < n; i++ {
		if arts[i].Bin != arts[0].Bin {
			t.Fatalf("build %d produced a different binary path: %s vs %s", i, arts[i].Bin, arts[0].Bin)
		}
	}
}

func TestBuildTimeoutKillsToolchain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain; skipped in -short mode")
	}
	g := execguard.New(execguard.Config{BuildTimeout: 20 * time.Millisecond})
	_, err := Build(context.Background(), parse(t, guardSrc), t.TempDir(), g)
	if !errors.Is(err, execguard.ErrTimeout) {
		t.Fatalf("want ErrTimeout from a 20ms build budget, got %v", err)
	}
	if !strings.Contains(err.Error(), "go build") {
		t.Fatalf("error %q does not name the build stage", err)
	}
}

func TestJanitorSweepsAndEvictsLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short mode")
	}
	cache := t.TempDir()
	sink := newBuildSink()
	g := execguard.New(execguard.Config{CacheEntries: 2, Sink: sink})
	ctx := context.Background()

	// Plant debris the janitor must sweep: an abandoned staging dir and
	// an old quarantined entry.
	stale := filepath.Join(cache, "build-abandoned")
	bad := filepath.Join(cache, "deadbeef.bad")
	for dir, age := range map[string]time.Duration{stale: 2 * time.Hour, bad: 25 * time.Hour} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-age)
		if err := os.Chtimes(dir, old, old); err != nil {
			t.Fatal(err)
		}
	}

	srcs := []string{
		strings.Replace(guardSrc, "7", "1", 1),
		strings.Replace(guardSrc, "7", "2", 1),
		strings.Replace(guardSrc, "7", "3", 1),
	}
	var dirs []string
	for i, src := range srcs {
		a, err := Build(ctx, parse(t, src), cache, g)
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		dirs = append(dirs, a.Dir)
		// Space the mtimes out so LRU order is deterministic even on
		// coarse-grained filesystems.
		old := time.Now().Add(-time.Duration(len(srcs)-i) * time.Hour)
		if err := os.Chtimes(a.Dir, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// The third cold build's janitor pass ran with all three entries
	// present; run one more cold build to sweep with the aged mtimes.
	if _, err := Build(ctx, parse(t, strings.Replace(guardSrc, "7", "4", 1)), cache, g); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale staging dir survived the janitor: %v", err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("old quarantine dir survived the janitor: %v", err)
	}
	if _, err := os.Stat(dirs[0]); !os.IsNotExist(err) {
		t.Fatalf("LRU eviction kept the oldest entry %s: %v", dirs[0], err)
	}
	if sink.count("build_janitor_evict") == 0 {
		t.Fatal("no build_janitor_evict event emitted")
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	live := 0
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name(), "build-") && !strings.HasSuffix(e.Name(), ".bad") {
			live++
		}
	}
	if live > 2 {
		t.Fatalf("cache holds %d entries, want at most 2", live)
	}
}
