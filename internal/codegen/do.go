package codegen

import (
	"fmt"

	"parascope/internal/fortran"
)

// genDo lowers a DO loop. Sequential loops become a counted Go for
// loop with the interpreter's trip-count arithmetic; loops marked
// `c$par doall` additionally get a parallel branch taken when the
// trip count exceeds one, replicating the interpreter's fan-out
// protocol so that reduction results are byte-identical at equal
// worker counts.
func (g *gen) genDo(st *fortran.DoStmt) {
	k := g.tmp
	g.tmp++
	ivar := st.Var
	if ivar == nil {
		g.decline("DO loop without a control variable")
	}
	if g.symType(ivar) != tInt {
		g.decline("non-integer DO variable %s", ivar.Name)
	}

	g.w("{")
	g.ind++
	g.w("lo%d := %s", k, g.toInt(g.expr(st.Lo)))
	g.w("hi%d := %s", k, g.toInt(g.expr(st.Hi)))
	if st.Step != nil {
		g.w("st%d := %s", k, g.toInt(g.expr(st.Step)))
	} else {
		g.w("st%d := cI(1)", k)
	}
	g.w("if st%d == 0 {", k)
	g.w("\trtErr(\"zero DO step\")")
	g.w("}")
	g.w("tr%d := (hi%d - lo%d + st%d) / st%d", k, k, k, k, k)
	g.w("if tr%d < 0 {", k)
	g.w("\ttr%d = 0", k)
	g.w("}")
	if st.Parallel {
		g.w("if tr%d > 1 {", k)
		g.ind++
		g.genDoall(st, k)
		g.ind--
		g.w("} else {")
		g.ind++
		g.genSeqBody(st, k)
		g.ind--
		g.w("}")
	} else {
		g.genSeqBody(st, k)
	}
	g.ind--
	g.w("}")
}

func (g *gen) genSeqBody(st *fortran.DoStmt, k int) {
	iv := g.scalRef(st.Var)
	g.w("iv%d := lo%d", k, k)
	g.w("for n%d := cI(0); n%d < tr%d; n%d++ {", k, k, k, k)
	g.ind++
	g.w("%s = iv%d", iv, k)
	g.stmts(st.Body)
	g.w("iv%d += st%d", k, k)
	g.ind--
	g.w("}")
	g.w("%s = iv%d", iv, k)
}

// checkParallelBody declines constructs whose execution inside a
// DOALL worker the interpreter treats as an error (escaping control
// flow) or that would race on shared interpreter state (READ).
func (g *gen) checkParallelBody(body []fortran.Stmt, stack [][]fortran.Stmt) {
	for _, s := range body {
		switch st := s.(type) {
		case *fortran.ReturnStmt, *fortran.StopStmt:
			g.decline("control flow escaping a parallel loop")
		case *fortran.ReadStmt:
			g.decline("READ inside a parallel loop")
		case *fortran.GotoStmt:
			if !g.resolveGotoIn(stack, st.Target) {
				g.decline("control flow escaping a parallel loop")
			}
		case *fortran.IfStmt:
			g.checkParallelBody(st.Then, append(stack, st.Then))
			g.checkParallelBody(st.Else, append(stack, st.Else))
		case *fortran.DoStmt:
			g.checkParallelBody(st.Body, append(stack, st.Body))
		case *fortran.WhileStmt:
			g.checkParallelBody(st.Body, append(stack, st.Body))
		}
	}
}

func (g *gen) genDoall(st *fortran.DoStmt, k int) {
	g.checkParallelBody(st.Body, [][]fortran.Stmt{st.Body})

	// Privatized symbols: the Private list plus the loop variable;
	// reduction variables get identity-seeded storage instead.
	reduced := map[*fortran.Symbol]bool{}
	for _, r := range st.Reductions {
		if r.Sym.Kind != fortran.SymScalar {
			g.decline("non-scalar reduction variable %s", r.Sym.Name)
		}
		if t := g.symType(r.Sym); t != tInt && t != tFloat {
			g.decline("non-numeric reduction variable %s", r.Sym.Name)
		}
		reduced[r.Sym] = true
	}
	private := make([]*fortran.Symbol, 0, len(st.Private)+1)
	seen := map[*fortran.Symbol]bool{}
	for _, p := range append(append([]*fortran.Symbol{}, st.Private...), st.Var) {
		if seen[p] || reduced[p] {
			continue
		}
		if p.Kind != fortran.SymScalar && p.Kind != fortran.SymArray {
			continue
		}
		seen[p] = true
		private = append(private, p)
	}

	g.w("nw%d := gWorkers()", k)
	g.w("if nw%d > tr%d {", k, k)
	g.w("\tnw%d = tr%d", k, k)
	g.w("}")
	for ri, r := range st.Reductions {
		g.w("red%d_%d := make([]%s, nw%d)", ri, k, g.symType(r.Sym).goName(), k)
	}
	g.w("var wg%d sync.WaitGroup", k)
	g.w("for w%d := cI(0); w%d < nw%d; w%d++ {", k, k, k, k)
	g.ind++
	g.w("wg%d.Add(1)", k)
	g.w("go func(w%d int64) {", k)
	g.ind++
	g.w("defer wg%d.Done()", k)

	// Private storage: worker-local shadows of the shared names, so
	// the body text lowers identically in both branches.
	for _, p := range private {
		name := g.arrName(p) // same mangling for scalars and arrays
		switch {
		case p.Kind == fortran.SymArray:
			g.w("%s := %s.blank()", name, name)
		case p.Dummy:
			g.w("%s := %s(%s)", mangleVar(p.Name), refFn(g.symType(p)), zeroLit(g.symType(p)))
			name = mangleVar(p.Name)
		default:
			g.w("var %s %s", name, g.symType(p).goName())
		}
		g.w("_ = %s", name)
	}
	for ri, r := range st.Reductions {
		ident := reductionIdentity(r, g.symType(r.Sym))
		if r.Sym.Dummy {
			g.w("%s := %s(%s)", mangleVar(r.Sym.Name), refFn(g.symType(r.Sym)), ident)
		} else if r.Sym.Common != "" {
			g.w("%s := %s", mangleCommon(r.Sym.Common, r.Sym.Name), ident)
		} else {
			g.w("%s := %s", mangleVar(r.Sym.Name), ident)
		}
		_ = ri
	}

	// Block-cyclic iteration assignment, as the interpreter does it.
	g.w("for n%d := w%d; n%d < tr%d; n%d += nw%d {", k, k, k, k, k, k)
	g.ind++
	g.w("%s = lo%d + n%d*st%d", g.scalRef(st.Var), k, k, k)
	g.stmts(st.Body)
	g.ind--
	g.w("}")
	for ri, r := range st.Reductions {
		g.w("red%d_%d[w%d] = %s", ri, k, k, g.scalRef(r.Sym))
	}
	g.ind--
	g.w("}(w%d)", k)
	g.ind--
	g.w("}")
	g.w("wg%d.Wait()", k)

	// Combine per-worker reduction accumulators in worker order,
	// starting from the shared variable's current value.
	for ri, r := range st.Reductions {
		outer := g.scalRef(r.Sym)
		g.w("acc%d_%d := %s", ri, k, outer)
		g.w("for w%d := cI(0); w%d < nw%d; w%d++ {", k, k, k, k)
		g.ind++
		g.combine(r, fmt.Sprintf("acc%d_%d", ri, k), fmt.Sprintf("red%d_%d[w%d]", ri, k, k))
		g.ind--
		g.w("}")
		g.w("%s = acc%d_%d", outer, ri, k)
	}
	// Final loop variable value, as the sequential loop would leave it.
	g.w("%s = lo%d + tr%d*st%d", g.scalRef(st.Var), k, k, k)
}

func reductionIdentity(r fortran.Reduction, t gtype) string {
	switch {
	case r.OpName == "max":
		if t == tInt {
			return "cI(-9223372036854775808)"
		}
		return "math.Inf(-1)"
	case r.OpName == "min":
		if t == tInt {
			return "cI(9223372036854775807)"
		}
		return "math.Inf(1)"
	case r.Op == fortran.TokStar:
		if t == tInt {
			return "cI(1)"
		}
		return "cF(1.0)"
	default: // sum
		if t == tInt {
			return "cI(0)"
		}
		return "cF(0.0)"
	}
}

func (g *gen) combine(r fortran.Reduction, acc, v string) {
	switch {
	case r.OpName == "max":
		g.w("if %s > %s {", v, acc)
		g.w("\t%s = %s", acc, v)
		g.w("}")
	case r.OpName == "min":
		g.w("if %s < %s {", v, acc)
		g.w("\t%s = %s", acc, v)
		g.w("}")
	case r.Op == fortran.TokStar:
		g.w("%s = %s * %s", acc, acc, v)
	default:
		g.w("%s = %s + %s", acc, acc, v)
	}
}
