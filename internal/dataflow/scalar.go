package dataflow

import (
	"parascope/internal/cfg"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// PrivResult describes whether a scalar may be made private to a loop.
type PrivResult struct {
	Privatizable bool
	// NeedsLastValue is set when the scalar is privatizable inside
	// the loop but its value is consumed after it, so parallelization
	// must copy the last iteration's value out.
	NeedsLastValue bool
	// Reason explains a negative verdict for the variable pane.
	Reason string
}

// Privatizable determines whether scalar sym can be made private to
// loop l: it must be (fully) assigned inside the loop on every path
// before any use, so no value flows between iterations. This is the
// scalar Kill analysis of the paper (§4): "recognizing scalars that
// are killed on every iteration of a loop and may be made private,
// thus eliminating dependences".
func (a *Analysis) Privatizable(l *cfg.Loop, sym *fortran.Symbol) PrivResult {
	if sym.Kind != fortran.SymScalar {
		return PrivResult{Reason: "not a scalar"}
	}
	return a.privatizableAny(l, sym)
}

// ArrayPrivatizable determines whether an array can be made private
// to the loop: some access must *kill* the whole array (a covering
// write, or a call whose interprocedural summary proves an array
// kill) before any use on every path of an iteration. This is the
// array privatization the paper identifies as required for arc3d and
// slab2d but absent from Ped — implemented here as an extension and
// exposed through the explicit privatize-array transformation.
func (a *Analysis) ArrayPrivatizable(l *cfg.Loop, sym *fortran.Symbol) PrivResult {
	if !sym.IsArray() {
		return PrivResult{Reason: "not an array"}
	}
	return a.privatizableAny(l, sym)
}

func (a *Analysis) privatizableAny(l *cfg.Loop, sym *fortran.Symbol) PrivResult {
	if sym == l.Do.Var {
		return PrivResult{Privatizable: true, Reason: "loop induction variable"}
	}
	hasDef := false
	for _, s := range l.Stmts() {
		for _, ac := range a.Accesses(s) {
			if ac.Sym == sym && ac.Write && !ac.Partial {
				hasDef = true
			}
		}
	}
	if !hasDef {
		return PrivResult{Reason: "never assigned in loop"}
	}
	if len(l.Do.Body) == 0 {
		return PrivResult{Reason: "empty loop body"}
	}
	entry := a.G.NodeFor(l.Do.Body[0])
	if entry == nil {
		return PrivResult{Reason: "no body entry"}
	}
	if a.liveIn[entry][sym] {
		return PrivResult{Reason: "upward-exposed use: value flows into the iteration"}
	}
	res := PrivResult{Privatizable: true}
	if a.LiveOutOfLoop(l, sym) {
		res.NeedsLastValue = true
	}
	return res
}

// Reductions recognizes scalar reductions in loop l: every access to
// the reduction variable inside the loop occurs in statements of the
// form  s = s op e  (op in {+,-,*}) or  s = max(s,e) / min(s,e),
// with a single consistent operator. (§5 of the paper: "Five of the
// programs contain sum reductions which go unrecognized by Ped" — the
// enhancement implemented here.)
func (a *Analysis) Reductions(l *cfg.Loop) []fortran.Reduction {
	type cand struct {
		op     fortran.TokKind
		opName string
		stmts  map[fortran.Stmt]bool
		ok     bool
	}
	cands := map[*fortran.Symbol]*cand{}
	for _, s := range l.Stmts() {
		as, isAssign := s.(*fortran.AssignStmt)
		if !isAssign {
			continue
		}
		sym := as.Lhs.Sym
		if sym == nil || sym.Kind != fortran.SymScalar || !sym.Type.Numeric() {
			continue
		}
		op, opName, operand, ok := reductionShape(sym, as.Rhs)
		if !ok {
			continue
		}
		if usesSym(operand, sym) {
			continue
		}
		c := cands[sym]
		if c == nil {
			c = &cand{op: op, opName: opName, stmts: map[fortran.Stmt]bool{}, ok: true}
			cands[sym] = c
		}
		if c.op != op || c.opName != opName {
			c.ok = false
		}
		c.stmts[s] = true
	}
	var out []fortran.Reduction
	for _, s := range l.Stmts() {
		for _, ac := range a.Accesses(s) {
			c := cands[ac.Sym]
			if c == nil {
				continue
			}
			if !c.stmts[s] {
				c.ok = false // accessed outside its reduction statements
			}
		}
	}
	for sym, c := range cands {
		if c.ok {
			out = append(out, fortran.Reduction{Sym: sym, Op: c.op, OpName: c.opName})
		}
	}
	sortReductions(out)
	return out
}

func sortReductions(rs []fortran.Reduction) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Sym.Name < rs[j-1].Sym.Name; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// reductionShape matches rhs against reduction patterns: a +/- chain
// containing sym exactly once as a positive term (sum reduction,
// covering forms like s = s + a(i) + b(i) and s = s - e), a product
// chain containing sym once, and max/min(sym, e). It returns the
// reduction operator and a representative non-recurring operand.
func reductionShape(sym *fortran.Symbol, rhs fortran.Expr) (fortran.TokKind, string, fortran.Expr, bool) {
	isSym := func(e fortran.Expr) bool {
		vr, ok := e.(*fortran.VarRef)
		return ok && vr.Sym == sym && len(vr.Subs) == 0
	}
	// Sum chain: flatten over +/-.
	if op, operand, ok := matchChain(sym, rhs, fortran.TokPlus, isSym); ok {
		return op, "", operand, true
	}
	if op, operand, ok := matchChain(sym, rhs, fortran.TokStar, isSym); ok {
		return op, "", operand, true
	}
	switch x := rhs.(type) {
	case *fortran.FuncCall:
		if (x.Name == "max" || x.Name == "min" || x.Name == "amax1" || x.Name == "amin1") && len(x.Args) == 2 {
			name := x.Name
			if name == "amax1" {
				name = "max"
			}
			if name == "amin1" {
				name = "min"
			}
			if isSym(x.Args[0]) {
				return fortran.TokIdent, name, x.Args[1], true
			}
			if isSym(x.Args[1]) {
				return fortran.TokIdent, name, x.Args[0], true
			}
		}
	}
	return 0, "", nil, false
}

// matchChain flattens rhs over the associative operator (TokPlus
// flattens +/- with signs; TokStar flattens *) and reports a
// reduction when sym appears exactly once, positively, as a direct
// leaf and in no other leaf. The returned operand is the remaining
// chain's first leaf (used only for the self-reference check).
func matchChain(sym *fortran.Symbol, rhs fortran.Expr, op fortran.TokKind,
	isSym func(fortran.Expr) bool) (fortran.TokKind, fortran.Expr, bool) {

	type leaf struct {
		e   fortran.Expr
		pos bool
	}
	var leaves []leaf
	var flatten func(e fortran.Expr, pos bool)
	flatten = func(e fortran.Expr, pos bool) {
		if b, ok := e.(*fortran.Binary); ok {
			switch {
			case op == fortran.TokPlus && b.Op == fortran.TokPlus:
				flatten(b.X, pos)
				flatten(b.Y, pos)
				return
			case op == fortran.TokPlus && b.Op == fortran.TokMinus:
				flatten(b.X, pos)
				flatten(b.Y, !pos)
				return
			case op == fortran.TokStar && b.Op == fortran.TokStar:
				flatten(b.X, pos)
				flatten(b.Y, pos)
				return
			}
		}
		leaves = append(leaves, leaf{e: e, pos: pos})
	}
	flatten(rhs, true)
	if len(leaves) < 2 {
		return 0, nil, false
	}
	symCount := 0
	var operand fortran.Expr
	for _, l := range leaves {
		if isSym(l.e) {
			if !l.pos {
				return 0, nil, false // s = e - s is not a reduction
			}
			symCount++
			continue
		}
		if usesSym(l.e, sym) {
			return 0, nil, false // sym buried in another operand
		}
		if operand == nil {
			operand = l.e
		}
	}
	if symCount != 1 || operand == nil {
		return 0, nil, false
	}
	return op, operand, true
}

func usesSym(e fortran.Expr, sym *fortran.Symbol) bool {
	found := false
	var walk func(fortran.Expr)
	walk = func(e fortran.Expr) {
		switch x := e.(type) {
		case *fortran.VarRef:
			if x.Sym == sym {
				found = true
			}
			for _, s := range x.Subs {
				walk(s)
			}
		case *fortran.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *fortran.Unary:
			walk(x.X)
		case *fortran.Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(e)
	return found
}

// InductionVar describes an auxiliary induction variable: a scalar
// updated exactly once per iteration by a loop-invariant amount.
type InductionVar struct {
	Sym  *fortran.Symbol
	Step expr.Linear // per-iteration increment
}

// InductionVars finds auxiliary induction variables of loop l.
func (a *Analysis) InductionVars(l *cfg.Loop) []InductionVar {
	defCount := map[*fortran.Symbol]int{}
	defStmt := map[*fortran.Symbol]*fortran.AssignStmt{}
	conditional := map[*fortran.Symbol]bool{}
	cd := a.G.ComputeControlDeps()
	headerNode := a.G.NodeFor(l.Do)
	for _, s := range l.Stmts() {
		for _, ac := range a.Accesses(s) {
			if !ac.Write || ac.Sym.Kind != fortran.SymScalar {
				continue
			}
			defCount[ac.Sym]++
			if as, ok := s.(*fortran.AssignStmt); ok {
				defStmt[ac.Sym] = as
			}
			// A def nested under a branch other than the loop header
			// is conditional and disqualifies the variable.
			node := a.G.NodeFor(s)
			for _, dep := range cd.DepsOf(node) {
				if dep != headerNode {
					if _, isDo := dep.Stmt.(*fortran.DoStmt); !isDo {
						conditional[ac.Sym] = true
					}
				}
			}
		}
	}
	var out []InductionVar
	for sym, n := range defCount {
		if n != 1 || conditional[sym] || sym.Type != fortran.TypeInteger {
			continue
		}
		as := defStmt[sym]
		if as == nil || len(as.Lhs.Subs) != 0 {
			continue
		}
		// Match sym = sym + c.
		lin, ok := expr.Linearize(a.Unit, as.Rhs)
		if !ok {
			continue
		}
		if lin.Coef(sym) != 1 {
			continue
		}
		step := lin.Without(sym)
		if a.loopInvariantLinear(l, step) {
			out = append(out, InductionVar{Sym: sym, Step: step})
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Sym.Name < out[j-1].Sym.Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// LoopInvariant reports whether expression e is invariant in loop l:
// it references no variable defined anywhere in the loop (calls and
// array references are treated as variant).
func (a *Analysis) LoopInvariant(l *cfg.Loop, e fortran.Expr) bool {
	defined := a.definedInLoop(l)
	invariant := true
	var walk func(fortran.Expr)
	walk = func(e fortran.Expr) {
		switch x := e.(type) {
		case nil:
		case *fortran.VarRef:
			if len(x.Subs) > 0 {
				invariant = false
				return
			}
			if x.Sym != nil && defined[x.Sym] {
				invariant = false
			}
		case *fortran.FuncCall:
			if x.Callee != nil || x.Sym != nil {
				invariant = false // user call: conservative
				return
			}
			for _, arg := range x.Args {
				walk(arg)
			}
		case *fortran.Unary:
			walk(x.X)
		case *fortran.Binary:
			walk(x.X)
			walk(x.Y)
		}
	}
	walk(e)
	return invariant
}

func (a *Analysis) loopInvariantLinear(l *cfg.Loop, lin expr.Linear) bool {
	defined := a.definedInLoop(l)
	for _, t := range lin.Terms {
		if defined[t.Sym] {
			return false
		}
	}
	return true
}

func (a *Analysis) definedInLoop(l *cfg.Loop) map[*fortran.Symbol]bool {
	out := map[*fortran.Symbol]bool{l.Do.Var: true}
	for _, s := range l.Stmts() {
		for _, ac := range a.Accesses(s) {
			if ac.Write {
				out[ac.Sym] = true
			}
		}
	}
	return out
}
