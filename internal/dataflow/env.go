package dataflow

import (
	"parascope/internal/cfg"
	"parascope/internal/expr"
	"parascope/internal/fortran"
)

// EnvAt builds the symbolic environment in effect at statement s:
// integer constants known by constant propagation, plus ranges for
// every enclosing DO loop's induction variable derived from its
// bounds. Dependence testing layers user assertions on top.
func (a *Analysis) EnvAt(s fortran.Stmt) *expr.Env {
	env := expr.NewEnv()
	for _, sym := range a.ConstSymbols(s) {
		if v, ok := a.ConstAt(s, sym); ok {
			env.SetValue(sym, v)
		}
	}
	l := a.Tree.Innermost(s)
	if do, ok := s.(*fortran.DoStmt); ok {
		if own := a.Tree.LoopOf(do); own != nil {
			l = own
		}
	}
	if l != nil {
		for _, loop := range l.Nest() {
			a.addLoopRange(env, loop)
		}
	}
	return env
}

// addLoopRange bounds loop.Do.Var using the loop bounds when they can
// be evaluated (possibly symbolically through env itself).
func (a *Analysis) addLoopRange(env *expr.Env, loop *cfg.Loop) {
	do := loop.Do
	// Constants known at the loop header help evaluate the bounds.
	for _, sym := range a.ConstSymbols(do) {
		if v, ok := a.ConstAt(do, sym); ok {
			env.SetValue(sym, v)
		}
	}
	loLin, loOK := expr.Linearize(a.Unit, do.Lo)
	hiLin, hiOK := expr.Linearize(a.Unit, do.Hi)
	step := int64(1)
	if do.Step != nil {
		sLin, sOK := expr.Linearize(a.Unit, do.Step)
		if !sOK {
			return
		}
		sr := env.EvalRange(sLin)
		if !sr.IsExact() {
			return
		}
		step = sr.Lo
	}
	if step == 0 {
		return
	}
	var lo, hi expr.Range = expr.FullRange, expr.FullRange
	if loOK {
		lo = env.EvalRange(loLin)
	}
	if hiOK {
		hi = env.EvalRange(hiLin)
	}
	r := expr.FullRange
	if step > 0 {
		// i from lo upward, bounded by hi.
		r = expr.Range{Lo: lo.Lo, LoInf: lo.LoInf, Hi: hi.Hi, HiInf: hi.HiInf}
	} else {
		r = expr.Range{Lo: hi.Lo, LoInf: hi.LoInf, Hi: lo.Hi, HiInf: lo.HiInf}
	}
	env.SetRange(do.Var, r)
}

// EnvLoopsOnly builds the environment at s from literal loop bounds
// only, without constant propagation — the "no constants" ablation.
func (a *Analysis) EnvLoopsOnly(s fortran.Stmt) *expr.Env {
	env := expr.NewEnv()
	l := a.Tree.Innermost(s)
	if do, ok := s.(*fortran.DoStmt); ok {
		if own := a.Tree.LoopOf(do); own != nil {
			l = own
		}
	}
	if l == nil {
		return env
	}
	for _, loop := range l.Nest() {
		do := loop.Do
		loLin, loOK := expr.Linearize(a.Unit, do.Lo)
		hiLin, hiOK := expr.Linearize(a.Unit, do.Hi)
		if do.Step != nil {
			continue // non-unit step without constants: stay unbounded
		}
		var lo, hi expr.Range = expr.FullRange, expr.FullRange
		if loOK {
			lo = env.EvalRange(loLin)
		}
		if hiOK {
			hi = env.EvalRange(hiLin)
		}
		env.SetRange(do.Var, expr.Range{Lo: lo.Lo, LoInf: lo.LoInf, Hi: hi.Hi, HiInf: hi.HiInf})
	}
	return env
}

// TripCount evaluates the loop's iteration count when it is a known
// constant: (hi - lo + step) / step for positive step.
func (a *Analysis) TripCount(loop *cfg.Loop) (int64, bool) {
	if loop == nil {
		return 0, false
	}
	env := a.EnvAt(loop.Do)
	do := loop.Do
	loLin, ok1 := expr.Linearize(a.Unit, do.Lo)
	hiLin, ok2 := expr.Linearize(a.Unit, do.Hi)
	if !ok1 || !ok2 {
		return 0, false
	}
	lo := env.EvalRange(loLin)
	hi := env.EvalRange(hiLin)
	if !lo.IsExact() || !hi.IsExact() {
		return 0, false
	}
	step := int64(1)
	if do.Step != nil {
		sLin, ok := expr.Linearize(a.Unit, do.Step)
		if !ok {
			return 0, false
		}
		sr := env.EvalRange(sLin)
		if !sr.IsExact() || sr.Lo == 0 {
			return 0, false
		}
		step = sr.Lo
	}
	n := (hi.Lo - lo.Lo + step) / step
	if n < 0 {
		n = 0
	}
	return n, true
}
