package dataflow

import (
	"testing"

	"parascope/internal/cfg"
	"parascope/internal/fortran"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	f, err := fortran.Parse("t.f", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Analyze(f.Units[0], nil)
}

func loopN(t *testing.T, a *Analysis, n int) *cfg.Loop {
	t.Helper()
	if n >= len(a.Tree.All) {
		t.Fatalf("loop %d not found (have %d)", n, len(a.Tree.All))
	}
	return a.Tree.All[n]
}

func TestStmtAccesses(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real x, y, b(10)
      x = y + b(i)
      end
`)
	u := a.Unit
	acc := a.Accesses(u.Body[0])
	reads := map[string]bool{}
	writes := map[string]bool{}
	for _, ac := range acc {
		if ac.Write {
			writes[ac.Sym.Name] = true
		} else {
			reads[ac.Sym.Name] = true
		}
	}
	for _, want := range []string{"y", "b", "i"} {
		if !reads[want] {
			t.Errorf("missing read of %s (reads=%v)", want, reads)
		}
	}
	if !writes["x"] || len(writes) != 1 {
		t.Errorf("writes = %v, want {x}", writes)
	}
}

func TestReachingDefsAndDefUse(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      i = 1
      i = 2
      if (i .gt. 0) then
         i = 3
      endif
      i = i + 1
      end
`)
	u := a.Unit
	last := u.Body[3]
	defs := a.DefsReaching(last, u.Lookup("i"))
	// i=2 (not killed on else path) and i=3 reach the last statement;
	// i=1 is killed by i=2.
	lines := map[int]bool{}
	for _, d := range defs {
		lines[d.Node.Stmt.Line()] = true
	}
	if len(defs) != 2 {
		t.Errorf("got %d reaching defs (%v), want 2", len(defs), lines)
	}
	for _, d := range defs {
		if as, ok := d.Node.Stmt.(*fortran.AssignStmt); ok {
			if il, ok := as.Rhs.(*fortran.IntLit); ok && il.Val == 1 {
				t.Error("killed def i=1 still reaches")
			}
		}
	}
}

func TestLiveness(t *testing.T) {
	a := analyze(t, `
      program main
      integer i, j
      i = 1
      j = 2
      print *, i
      end
`)
	u := a.Unit
	i := u.Lookup("i")
	j := u.Lookup("j")
	if !a.LiveOut(u.Body[0], i) {
		t.Error("i should be live after i=1 (used by print)")
	}
	if a.LiveOut(u.Body[1], j) {
		t.Error("j should be dead after j=2 (never used)")
	}
}

func TestConstantPropagation(t *testing.T) {
	a := analyze(t, `
      program main
      integer n, m, k
      real a(100)
      n = 10
      m = n*2 + 1
      do k = 1, m
         a(k) = 0.0
      enddo
      n = k
      end
`)
	u := a.Unit
	do := u.Body[2]
	if v, ok := a.ConstAt(do, u.Lookup("n")); !ok || v != 10 {
		t.Errorf("n at loop = %d,%v; want 10", v, ok)
	}
	if v, ok := a.ConstAt(do, u.Lookup("m")); !ok || v != 21 {
		t.Errorf("m at loop = %d,%v; want 21", v, ok)
	}
	// k is the loop variable: not constant inside.
	inner := u.Body[2].(*fortran.DoStmt).Body[0]
	if _, ok := a.ConstAt(inner, u.Lookup("k")); ok {
		t.Error("loop variable must not be a known constant in the body")
	}
}

func TestConstantsSurviveLoops(t *testing.T) {
	a := analyze(t, `
      program main
      integer n, i
      real a(100)
      n = 100
      do i = 1, 10
         a(i) = a(i) + 1.0
      enddo
      a(n) = 0.0
      end
`)
	u := a.Unit
	after := u.Body[2]
	if v, ok := a.ConstAt(after, u.Lookup("n")); !ok || v != 100 {
		t.Errorf("n after loop = %d,%v; want 100 (loop does not touch n)", v, ok)
	}
	inLoop := u.Body[1].(*fortran.DoStmt).Body[0]
	if v, ok := a.ConstAt(inLoop, u.Lookup("n")); !ok || v != 100 {
		t.Errorf("n inside loop = %d,%v; want 100", v, ok)
	}
}

func TestPrivatizable(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real t, s, a(100), b(100)
      s = 0.0
      do i = 1, 100
         t = a(i)*2.0
         b(i) = t + 1.0
         s = s + t
      enddo
      print *, s
      end
`)
	u := a.Unit
	l := loopN(t, a, 0)
	pt := a.Privatizable(l, u.Lookup("t"))
	if !pt.Privatizable {
		t.Errorf("t should be privatizable: %s", pt.Reason)
	}
	if pt.NeedsLastValue {
		t.Error("t is dead after the loop; no last value needed")
	}
	ps := a.Privatizable(l, u.Lookup("s"))
	if ps.Privatizable {
		t.Error("s carries a value between iterations; must not be privatizable")
	}
}

func TestPrivatizableNeedsLastValue(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real t, a(100)
      do i = 1, 100
         t = a(i)
         a(i) = t*2.0
      enddo
      print *, t
      end
`)
	u := a.Unit
	l := loopN(t, a, 0)
	res := a.Privatizable(l, u.Lookup("t"))
	if !res.Privatizable || !res.NeedsLastValue {
		t.Errorf("t: got %+v, want privatizable with last value", res)
	}
}

func TestPrivatizableConditionalDef(t *testing.T) {
	// t is only assigned under a condition, so the previous
	// iteration's value can flow into a use: not privatizable.
	a := analyze(t, `
      program main
      integer i
      real t, a(100), b(100)
      t = 0.0
      do i = 1, 100
         if (a(i) .gt. 0.0) then
            t = a(i)
         endif
         b(i) = t
      enddo
      end
`)
	u := a.Unit
	l := loopN(t, a, 0)
	res := a.Privatizable(l, u.Lookup("t"))
	if res.Privatizable {
		t.Error("conditionally-assigned t must not be privatizable")
	}
}

func TestReductionRecognition(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real s, p, big, a(100)
      s = 0.0
      p = 1.0
      big = -1.0e30
      do i = 1, 100
         s = s + a(i)
         p = p*a(i)
         big = max(big, a(i))
      enddo
      print *, s, p, big
      end
`)
	l := loopN(t, a, 0)
	reds := a.Reductions(l)
	if len(reds) != 3 {
		t.Fatalf("got %d reductions, want 3: %+v", len(reds), reds)
	}
	byName := map[string]fortran.Reduction{}
	for _, r := range reds {
		byName[r.Sym.Name] = r
	}
	if r := byName["s"]; r.Op != fortran.TokPlus {
		t.Errorf("s: op = %v, want +", r.Op)
	}
	if r := byName["p"]; r.Op != fortran.TokStar {
		t.Errorf("p: op = %v, want *", r.Op)
	}
	if r := byName["big"]; r.OpName != "max" {
		t.Errorf("big: opName = %q, want max", r.OpName)
	}
}

func TestReductionRejectsOtherUses(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real s, a(100), b(100)
      s = 0.0
      do i = 1, 100
         s = s + a(i)
         b(i) = s
      enddo
      end
`)
	l := loopN(t, a, 0)
	if reds := a.Reductions(l); len(reds) != 0 {
		t.Errorf("s is read mid-loop; got %+v, want none", reds)
	}
}

func TestReductionSubtraction(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real s, a(100)
      s = 0.0
      do i = 1, 100
         s = s - a(i)
      enddo
      print *, s
      end
`)
	l := loopN(t, a, 0)
	reds := a.Reductions(l)
	if len(reds) != 1 || reds[0].Op != fortran.TokPlus {
		t.Errorf("s = s - a(i): got %+v, want sum reduction", reds)
	}
}

func TestInductionVars(t *testing.T) {
	a := analyze(t, `
      program main
      integer i, k, m
      real a(200)
      k = 0
      do i = 1, 100
         k = k + 2
         a(k) = 1.0
         m = k
      enddo
      end
`)
	u := a.Unit
	l := loopN(t, a, 0)
	ivs := a.InductionVars(l)
	if len(ivs) != 1 {
		t.Fatalf("got %d induction vars, want 1 (%+v)", len(ivs), ivs)
	}
	if ivs[0].Sym != u.Lookup("k") || !ivs[0].Step.IsConst() || ivs[0].Step.Const != 2 {
		t.Errorf("iv = %+v", ivs[0])
	}
}

func TestLoopInvariant(t *testing.T) {
	a := analyze(t, `
      program main
      integer i, n
      real c, a(100)
      n = 100
      c = 3.0
      do i = 1, n
         a(i) = c*2.0 + a(i)
      enddo
      end
`)
	l := loopN(t, a, 0)
	as := l.Do.Body[0].(*fortran.AssignStmt)
	rhs := as.Rhs.(*fortran.Binary)
	if !a.LoopInvariant(l, rhs.X) {
		t.Error("c*2.0 should be loop invariant")
	}
	if a.LoopInvariant(l, rhs.Y) {
		t.Error("a(i) must not be loop invariant")
	}
}

func TestEnvAtAndTripCount(t *testing.T) {
	a := analyze(t, `
      program main
      integer i, j, n
      real a(100,100)
      n = 50
      do i = 1, n
         do j = 2, 99
            a(i,j) = 0.0
         enddo
      enddo
      end
`)
	u := a.Unit
	inner := loopN(t, a, 1)
	if inner.Header().Name != "j" {
		t.Fatalf("loop order unexpected: %v", inner)
	}
	env := a.EnvAt(inner.Do.Body[0])
	ri := env.RangeOf(u.Lookup("i"))
	if ri.Lo != 1 || ri.Hi != 50 {
		t.Errorf("range(i) = %s, want [1,50]", ri)
	}
	rj := env.RangeOf(u.Lookup("j"))
	if rj.Lo != 2 || rj.Hi != 99 {
		t.Errorf("range(j) = %s, want [2,99]", rj)
	}
	if n, ok := a.TripCount(inner); !ok || n != 98 {
		t.Errorf("trip(j) = %d,%v; want 98", n, ok)
	}
	outer := loopN(t, a, 0)
	if n, ok := a.TripCount(outer); !ok || n != 50 {
		t.Errorf("trip(i) = %d,%v; want 50", n, ok)
	}
}

func TestCallKillsConstants(t *testing.T) {
	a := analyze(t, `
      program main
      integer n
      real x
      n = 5
      call f(n, x)
      x = n
      end
      subroutine f(k, y)
      integer k
      real y
      k = k + 1
      y = 0.0
      end
`)
	u := a.Unit
	last := u.Body[2]
	if _, ok := a.ConstAt(last, u.Lookup("n")); ok {
		t.Error("n must not be constant after CALL f(n, x) under conservative effects")
	}
}

func TestDoStmtDefinesLoopVar(t *testing.T) {
	a := analyze(t, `
      program main
      integer i
      real a(10)
      do i = 1, 10
         a(i) = 0.0
      enddo
      print *, i
      end
`)
	u := a.Unit
	pr := u.Body[1]
	defs := a.DefsReaching(pr, u.Lookup("i"))
	if len(defs) == 0 {
		t.Error("DO statement should define i, reaching the print")
	}
}

func TestUpwardExposed(t *testing.T) {
	a := analyze(t, `
      subroutine f(x, y, n)
      integer n, i
      real x(n), y(n), t
      t = y(1)
      do i = 1, n
         x(i) = t
      enddo
      end
`)
	u := a.Unit
	up := a.UpwardExposed()
	if !up[u.Lookup("y")] {
		t.Error("y is read before any write: upward exposed")
	}
	if !up[u.Lookup("n")] {
		t.Error("n is read: upward exposed")
	}
	if up[u.Lookup("t")] {
		t.Error("t is assigned before use: not upward exposed")
	}
	if up[u.Lookup("x")] {
		t.Error("x is only written (element-wise): not upward exposed")
	}
}
