package dataflow

import (
	"sort"

	"parascope/internal/cfg"
	"parascope/internal/fortran"
)

// Def is one definition point of a variable.
type Def struct {
	ID      int
	Sym     *fortran.Symbol
	Node    *cfg.Node
	Access  Access
	Partial bool
}

// Use is one use point of a variable.
type Use struct {
	Sym    *fortran.Symbol
	Node   *cfg.Node
	Access Access
}

// Analysis bundles the scalar data-flow results for one unit.
type Analysis struct {
	Unit *fortran.Unit
	G    *cfg.Graph
	Tree *cfg.LoopTree
	Eff  SideEffects

	Defs     []*Def
	accesses map[*cfg.Node][]Access

	reachIn  map[*cfg.Node]bitset
	reachOut map[*cfg.Node]bitset
	liveIn   map[*cfg.Node]map[*fortran.Symbol]bool
	liveOut  map[*cfg.Node]map[*fortran.Symbol]bool

	// DefUse maps each definition to the uses it reaches; UseDef maps
	// each use (node, sym) to the definitions reaching it.
	defUse map[int][]Use
	useDef map[*cfg.Node]map[*fortran.Symbol][]*Def

	consts map[*cfg.Node]map[*fortran.Symbol]constVal
}

// Analyze runs all scalar analyses on unit u. A nil eff defaults to
// conservative call effects.
func Analyze(u *fortran.Unit, eff SideEffects) *Analysis {
	if eff == nil {
		eff = ConservativeEffects{}
	}
	a := &Analysis{
		Unit:     u,
		G:        cfg.Build(u),
		Tree:     cfg.BuildLoopTree(u),
		Eff:      eff,
		accesses: map[*cfg.Node][]Access{},
	}
	for _, n := range a.G.Nodes {
		if n.Stmt == nil {
			continue
		}
		acc := StmtAccesses(u, n.Stmt, eff)
		a.accesses[n] = acc
		for _, ac := range acc {
			if ac.Write {
				d := &Def{ID: len(a.Defs), Sym: ac.Sym, Node: n, Access: ac, Partial: ac.Partial}
				a.Defs = append(a.Defs, d)
			}
		}
	}
	a.solveReaching()
	a.buildDefUse()
	a.solveLiveness()
	a.propagateConstants()
	return a
}

// Accesses returns the accesses of the statement's node.
func (a *Analysis) Accesses(s fortran.Stmt) []Access {
	return a.accesses[a.G.NodeFor(s)]
}

// ---------------------------------------------------------------------------
// Reaching definitions

func (a *Analysis) solveReaching() {
	n := len(a.Defs)
	gen := map[*cfg.Node]bitset{}
	kill := map[*cfg.Node]bitset{}
	// Defs per symbol for kill computation.
	bySym := map[*fortran.Symbol][]*Def{}
	for _, d := range a.Defs {
		bySym[d.Sym] = append(bySym[d.Sym], d)
	}
	for _, node := range a.G.Nodes {
		g := newBitset(n)
		k := newBitset(n)
		for _, d := range a.Defs {
			if d.Node == node {
				g.set(d.ID)
				if !d.Partial {
					for _, other := range bySym[d.Sym] {
						if other != d {
							k.set(other.ID)
						}
					}
				}
			}
		}
		gen[node] = g
		kill[node] = k
	}
	a.reachIn = map[*cfg.Node]bitset{}
	a.reachOut = map[*cfg.Node]bitset{}
	for _, node := range a.G.Nodes {
		a.reachIn[node] = newBitset(n)
		a.reachOut[node] = newBitset(n)
	}
	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for _, node := range a.G.Nodes {
			in := a.reachIn[node]
			for _, p := range node.Preds {
				if in.orInto(a.reachOut[p]) {
					changed = true
				}
			}
			tmp.copyFrom(in)
			tmp.andNotInto(kill[node])
			tmp.orInto(gen[node])
			if !tmp.equal(a.reachOut[node]) {
				a.reachOut[node].copyFrom(tmp)
				changed = true
			}
		}
	}
}

func (a *Analysis) buildDefUse() {
	a.defUse = map[int][]Use{}
	a.useDef = map[*cfg.Node]map[*fortran.Symbol][]*Def{}
	for _, node := range a.G.Nodes {
		for _, ac := range a.accesses[node] {
			if ac.Write {
				continue
			}
			u := Use{Sym: ac.Sym, Node: node, Access: ac}
			a.reachIn[node].forEach(func(i int) {
				d := a.Defs[i]
				if d.Sym == ac.Sym {
					a.defUse[d.ID] = append(a.defUse[d.ID], u)
					m := a.useDef[node]
					if m == nil {
						m = map[*fortran.Symbol][]*Def{}
						a.useDef[node] = m
					}
					m[ac.Sym] = append(m[ac.Sym], d)
				}
			})
		}
	}
}

// UsesOf returns the uses reached by definition d.
func (a *Analysis) UsesOf(d *Def) []Use { return a.defUse[d.ID] }

// DefsReaching returns the definitions of sym that reach the entry of
// the statement's node.
func (a *Analysis) DefsReaching(s fortran.Stmt, sym *fortran.Symbol) []*Def {
	node := a.G.NodeFor(s)
	if node == nil {
		return nil
	}
	if m := a.useDef[node]; m != nil && m[sym] != nil {
		return m[sym]
	}
	// Fall back to scanning reachIn (covers symbols without a use at s).
	var out []*Def
	a.reachIn[node].forEach(func(i int) {
		if a.Defs[i].Sym == sym {
			out = append(out, a.Defs[i])
		}
	})
	return out
}

// ---------------------------------------------------------------------------
// Liveness

func (a *Analysis) solveLiveness() {
	a.liveIn = map[*cfg.Node]map[*fortran.Symbol]bool{}
	a.liveOut = map[*cfg.Node]map[*fortran.Symbol]bool{}
	for _, node := range a.G.Nodes {
		a.liveIn[node] = map[*fortran.Symbol]bool{}
		a.liveOut[node] = map[*fortran.Symbol]bool{}
	}
	changed := true
	for changed {
		changed = false
		// Backward problem: iterate nodes in reverse index order as a
		// decent approximation of reverse program order.
		for i := len(a.G.Nodes) - 1; i >= 0; i-- {
			node := a.G.Nodes[i]
			out := a.liveOut[node]
			for _, s := range node.Succs {
				for sym := range a.liveIn[s] {
					if !out[sym] {
						out[sym] = true
						changed = true
					}
				}
			}
			in := a.liveIn[node]
			// in = uses ∪ (out - full defs)
			defsFull := map[*fortran.Symbol]bool{}
			for _, ac := range a.accesses[node] {
				if ac.Write && !ac.Partial {
					defsFull[ac.Sym] = true
				}
			}
			for _, ac := range a.accesses[node] {
				if !ac.Write && !in[ac.Sym] {
					in[ac.Sym] = true
					changed = true
				}
			}
			for sym := range out {
				if !defsFull[sym] && !in[sym] {
					in[sym] = true
					changed = true
				}
			}
		}
	}
}

// UpwardExposed returns the variables whose values may be consumed
// before the unit assigns them — liveness at procedure entry. A call
// only truly *reads* its upward-exposed variables; reads satisfied by
// the callee's own writes stay internal.
func (a *Analysis) UpwardExposed() map[*fortran.Symbol]bool {
	out := map[*fortran.Symbol]bool{}
	for sym, live := range a.liveIn[a.G.Entry] {
		if live {
			out[sym] = true
		}
	}
	return out
}

// LiveOut reports whether sym is live after statement s.
func (a *Analysis) LiveOut(s fortran.Stmt, sym *fortran.Symbol) bool {
	node := a.G.NodeFor(s)
	return node != nil && a.liveOut[node][sym]
}

// LiveOutOfLoop reports whether sym is live on any loop-exit edge of
// the loop (i.e. its value may be consumed after the loop finishes).
func (a *Analysis) LiveOutOfLoop(l *cfg.Loop, sym *fortran.Symbol) bool {
	header := a.G.NodeFor(l.Do)
	if header == nil {
		return true
	}
	inLoop := map[*cfg.Node]bool{header: true}
	for _, s := range l.Stmts() {
		if n := a.G.NodeFor(s); n != nil {
			inLoop[n] = true
		}
	}
	for n := range inLoop {
		for _, succ := range n.Succs {
			if !inLoop[succ] && a.liveIn[succ][sym] {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Constant propagation

type constVal struct {
	known bool // known constant (otherwise ⊥/⊤ collapsed to unknown)
	val   int64
}

// propagateConstants runs a forward integer constant propagation:
// state maps integer scalars to known values at node entry.
func (a *Analysis) propagateConstants() {
	a.consts = map[*cfg.Node]map[*fortran.Symbol]constVal{}
	// Iterate to fixpoint. The lattice per symbol is
	// unknown-top → const → bottom; we start optimistic at top
	// (absent) and meet over predecessors.
	in := map[*cfg.Node]map[*fortran.Symbol]constVal{}
	out := map[*cfg.Node]map[*fortran.Symbol]constVal{}
	meet := func(dst, src map[*fortran.Symbol]constVal, first bool) (map[*fortran.Symbol]constVal, bool) {
		if first {
			cp := make(map[*fortran.Symbol]constVal, len(src))
			for k, v := range src {
				cp[k] = v
			}
			return cp, true
		}
		changed := false
		for k, v := range dst {
			sv, ok := src[k]
			if !ok || sv != v {
				delete(dst, k)
				changed = true
			}
		}
		return dst, changed
	}
	// Evaluate an expression under a constant state.
	var eval func(state map[*fortran.Symbol]constVal, e fortran.Expr) (int64, bool)
	eval = func(state map[*fortran.Symbol]constVal, e fortran.Expr) (int64, bool) {
		switch x := e.(type) {
		case *fortran.IntLit:
			return x.Val, true
		case *fortran.VarRef:
			if len(x.Subs) > 0 || x.Sym == nil {
				return 0, false
			}
			if x.Sym.Kind == fortran.SymParam {
				if il, ok := x.Sym.Value.(*fortran.IntLit); ok {
					return il.Val, true
				}
				return 0, false
			}
			if cv, ok := state[x.Sym]; ok && cv.known {
				return cv.val, true
			}
			return 0, false
		case *fortran.Unary:
			if x.Op == fortran.TokMinus {
				if v, ok := eval(state, x.X); ok {
					return -v, true
				}
			}
			return 0, false
		case *fortran.Binary:
			lv, lok := eval(state, x.X)
			rv, rok := eval(state, x.Y)
			if !lok || !rok {
				return 0, false
			}
			switch x.Op {
			case fortran.TokPlus:
				return lv + rv, true
			case fortran.TokMinus:
				return lv - rv, true
			case fortran.TokStar:
				return lv * rv, true
			case fortran.TokSlash:
				if rv != 0 {
					return lv / rv, true
				}
			}
			return 0, false
		}
		return 0, false
	}
	transfer := func(node *cfg.Node, state map[*fortran.Symbol]constVal) map[*fortran.Symbol]constVal {
		res := make(map[*fortran.Symbol]constVal, len(state))
		for k, v := range state {
			res[k] = v
		}
		if node.Stmt == nil {
			return res
		}
		switch st := node.Stmt.(type) {
		case *fortran.AssignStmt:
			sym := st.Lhs.Sym
			if sym != nil && sym.Kind == fortran.SymScalar && sym.Type == fortran.TypeInteger && len(st.Lhs.Subs) == 0 {
				if v, ok := eval(state, st.Rhs); ok {
					res[sym] = constVal{known: true, val: v}
				} else {
					delete(res, sym)
				}
				return res
			}
		}
		// Any other statement: invalidate symbols it may write.
		for _, ac := range a.accesses[node] {
			if ac.Write {
				delete(res, ac.Sym)
			}
		}
		return res
	}
	changedGlobal := true
	for iter := 0; changedGlobal && iter < 100; iter++ {
		changedGlobal = false
		for _, node := range a.G.Nodes {
			first := true
			var st map[*fortran.Symbol]constVal
			for _, p := range node.Preds {
				po := out[p]
				if po == nil {
					// Unvisited predecessor: optimistic TOP, skip.
					continue
				}
				st, _ = meet(st, po, first)
				first = false
			}
			if st == nil {
				st = map[*fortran.Symbol]constVal{}
			}
			in[node] = st
			newOut := transfer(node, st)
			if !constStateEqual(out[node], newOut) {
				out[node] = newOut
				changedGlobal = true
			}
		}
	}
	a.consts = in
}

func constStateEqual(a, b map[*fortran.Symbol]constVal) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// ConstAt returns sym's known constant value at entry to statement s.
func (a *Analysis) ConstAt(s fortran.Stmt, sym *fortran.Symbol) (int64, bool) {
	node := a.G.NodeFor(s)
	if node == nil {
		return 0, false
	}
	cv, ok := a.consts[node][sym]
	if !ok || !cv.known {
		return 0, false
	}
	return cv.val, true
}

// ConstSymbols returns, for statement s, all integer scalars with a
// known constant value at its entry, sorted by name.
func (a *Analysis) ConstSymbols(s fortran.Stmt) []*fortran.Symbol {
	node := a.G.NodeFor(s)
	if node == nil {
		return nil
	}
	var out []*fortran.Symbol
	for sym, cv := range a.consts[node] {
		if cv.known {
			out = append(out, sym)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
