// Package dataflow implements ParaScope's scalar data-flow analyses:
// variable access extraction, reaching definitions, def-use chains,
// liveness, constant propagation, scalar privatizability (Kill),
// reduction recognition and the symbolic environment that feeds
// dependence testing.
package dataflow

import (
	"math/bits"

	"parascope/internal/fortran"
)

// Access is one variable access made by a statement.
type Access struct {
	Sym   *fortran.Symbol
	Ref   *fortran.VarRef // the syntactic reference; nil for synthesized call effects
	Write bool
	// Partial marks writes that do not overwrite the whole variable
	// (array element stores, possible call side effects): they
	// generate a definition but kill nothing.
	Partial bool
	Stmt    fortran.Stmt
}

// SideEffects abstracts what a call statement may read and write.
// The conservative implementation assumes every actual argument and
// every COMMON variable is both referenced and modified; the
// interprocedural analysis provides a precise one.
type SideEffects interface {
	// CallEffects returns the accesses of a subroutine call or
	// function invocation in unit u with the given actual arguments.
	CallEffects(u *fortran.Unit, callee string, args []fortran.Expr, s fortran.Stmt) []Access
}

// ConservativeEffects treats calls as reading and writing every
// argument variable and every COMMON variable of the calling unit.
type ConservativeEffects struct{}

// CallEffects implements SideEffects.
func (ConservativeEffects) CallEffects(u *fortran.Unit, callee string, args []fortran.Expr, s fortran.Stmt) []Access {
	var out []Access
	for _, a := range args {
		if vr, ok := a.(*fortran.VarRef); ok && vr.Sym != nil &&
			(vr.Sym.Kind == fortran.SymScalar || vr.Sym.Kind == fortran.SymArray) {
			out = append(out,
				Access{Sym: vr.Sym, Ref: vr, Write: false, Stmt: s},
				Access{Sym: vr.Sym, Ref: vr, Write: true, Partial: true, Stmt: s})
		}
	}
	for _, sym := range u.SymbolsSorted() {
		if sym.Common != "" {
			out = append(out,
				Access{Sym: sym, Write: false, Stmt: s},
				Access{Sym: sym, Write: true, Partial: true, Stmt: s})
		}
	}
	return out
}

// StmtAccesses extracts the variable accesses of a single statement
// (not recursing into nested statement bodies). Call side effects are
// resolved through eff.
func StmtAccesses(u *fortran.Unit, s fortran.Stmt, eff SideEffects) []Access {
	var out []Access
	addReads := func(e fortran.Expr) {
		collectReads(u, e, s, eff, &out)
	}
	switch st := s.(type) {
	case *fortran.AssignStmt:
		addReads(st.Rhs)
		for _, sub := range st.Lhs.Subs {
			addReads(sub)
		}
		if st.Lhs.Sym != nil {
			out = append(out, Access{
				Sym: st.Lhs.Sym, Ref: st.Lhs, Write: true,
				Partial: st.Lhs.Sym.IsArray(), Stmt: s,
			})
		}
	case *fortran.IfStmt:
		addReads(st.Cond)
	case *fortran.DoStmt:
		addReads(st.Lo)
		addReads(st.Hi)
		if st.Step != nil {
			addReads(st.Step)
		}
		// The DO header fully defines its variable before any use (the
		// increment's read always follows the initial write), so the
		// loop variable is a pure definition here — making it
		// upward-exposed would wrongly block privatizing inner-loop
		// indices with respect to outer loops.
		out = append(out, Access{Sym: st.Var, Write: true, Stmt: s})
	case *fortran.WhileStmt:
		addReads(st.Cond)
	case *fortran.CallStmt:
		// Subscript expressions of arguments are read here; the rest
		// comes from the callee's side effects.
		for _, a := range st.Args {
			if vr, ok := a.(*fortran.VarRef); ok {
				for _, sub := range vr.Subs {
					addReads(sub)
				}
			} else {
				addReads(a)
			}
		}
		out = append(out, eff.CallEffects(u, st.Name, st.Args, s)...)
	case *fortran.PrintStmt:
		for _, it := range st.Items {
			addReads(it)
		}
	case *fortran.ReadStmt:
		for _, it := range st.Items {
			if vr, ok := it.(*fortran.VarRef); ok && vr.Sym != nil {
				for _, sub := range vr.Subs {
					addReads(sub)
				}
				out = append(out, Access{
					Sym: vr.Sym, Ref: vr, Write: true,
					Partial: vr.Sym.IsArray() && len(vr.Subs) > 0, Stmt: s,
				})
			}
		}
	}
	return out
}

func collectReads(u *fortran.Unit, e fortran.Expr, s fortran.Stmt, eff SideEffects, out *[]Access) {
	switch x := e.(type) {
	case nil:
	case *fortran.VarRef:
		if x.Sym != nil && (x.Sym.Kind == fortran.SymScalar || x.Sym.Kind == fortran.SymArray) {
			*out = append(*out, Access{Sym: x.Sym, Ref: x, Write: false, Stmt: s})
		}
		for _, sub := range x.Subs {
			collectReads(u, sub, s, eff, out)
		}
	case *fortran.FuncCall:
		for _, a := range x.Args {
			collectReads(u, a, s, eff, out)
		}
		if x.Callee != nil {
			*out = append(*out, eff.CallEffects(u, x.Name, x.Args, s)...)
		}
	case *fortran.Unary:
		collectReads(u, x.X, s, eff, out)
	case *fortran.Binary:
		collectReads(u, x.X, s, eff, out)
		collectReads(u, x.Y, s, eff, out)
	}
}

// bitset is a fixed-capacity bit vector used by the iterative solvers.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) orInto(src bitset) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= src[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

func (b bitset) andNotInto(src bitset) {
	for i := range b {
		b[i] &^= src[i]
	}
}

func (b bitset) copyFrom(src bitset) { copy(b, src) }

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) forEach(fn func(i int)) {
	for w, word := range b {
		for word != 0 {
			bit := word & -word
			i := w*64 + bits.TrailingZeros64(word)
			fn(i)
			word ^= bit
		}
	}
}
