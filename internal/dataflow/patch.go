package dataflow

import "parascope/internal/fortran"

// SimpleStmt reports whether s is a straight-line statement with no
// control flow and no call side effects — the envelope inside which a
// 1:1 replacement cannot change the CFG or the call surface.
func SimpleStmt(s fortran.Stmt) bool {
	switch s.(type) {
	case *fortran.AssignStmt, *fortran.PrintStmt, *fortran.ReadStmt, *fortran.ContinueStmt:
		return !hasUserCall(s)
	}
	return false
}

func hasUserCall(s fortran.Stmt) bool {
	found := false
	fortran.WalkExprs(s, func(e fortran.Expr) {
		if fc, ok := e.(*fortran.FuncCall); ok && fc.Callee != nil {
			found = true
		}
	})
	return found
}

// PatchStmt updates the analysis in place after old was replaced 1:1
// by new at the same position in the unit body (same CFG node, same
// statement ID — the caller renumbers before patching). It returns
// false, leaving the analysis untouched, when the replacement falls
// outside the patchable envelope:
//
//   - both statements must be simple (SimpleStmt), so the CFG shape is
//     unchanged;
//   - the write accesses must match as a (symbol, partial) multiset,
//     so reaching-definition gen/kill sets — and the whole bitset
//     solution — are unchanged;
//   - no integer scalar may be written, so the constant-propagation
//     lattice is unchanged.
//
// Reads may change freely: the node's def-use chains are rebuilt from
// the existing reaching solution, and liveness is re-solved only when
// the set of symbols read actually differs.
func (a *Analysis) PatchStmt(old, new fortran.Stmt) bool {
	if !SimpleStmt(old) || !SimpleStmt(new) {
		return false
	}
	node := a.G.NodeFor(new)
	if node == nil || node.Stmt != old {
		return false
	}
	oldAcc := a.accesses[node]
	newAcc := StmtAccesses(a.Unit, new, a.Eff)
	if !writesMatch(oldAcc, newAcc) {
		return false
	}
	if writesIntScalar(newAcc) {
		return false
	}

	node.Stmt = new
	a.accesses[node] = newAcc
	a.Tree.Reindex(old, new)

	// Re-point the node's Def objects at the matching new write
	// accesses. IDs and gen/kill are untouched, so reachIn/reachOut
	// stay valid.
	var nodeDefs []*Def
	for _, d := range a.Defs {
		if d.Node == node {
			nodeDefs = append(nodeDefs, d)
		}
	}
	i := 0
	for _, ac := range newAcc {
		if !ac.Write {
			continue
		}
		for j := i; j < len(nodeDefs); j++ {
			if nodeDefs[j].Sym == ac.Sym && nodeDefs[j].Partial == ac.Partial {
				nodeDefs[i], nodeDefs[j] = nodeDefs[j], nodeDefs[i]
				break
			}
		}
		nodeDefs[i].Access = ac
		i++
	}

	// Rebuild the node's use chains against the unchanged reaching
	// solution.
	for id, uses := range a.defUse {
		kept := uses[:0:0]
		for _, us := range uses {
			if us.Node != node {
				kept = append(kept, us)
			}
		}
		if len(kept) == 0 {
			delete(a.defUse, id)
		} else {
			a.defUse[id] = kept
		}
	}
	delete(a.useDef, node)
	for _, ac := range newAcc {
		if ac.Write {
			continue
		}
		u := Use{Sym: ac.Sym, Node: node, Access: ac}
		a.reachIn[node].forEach(func(di int) {
			d := a.Defs[di]
			if d.Sym == ac.Sym {
				a.defUse[d.ID] = append(a.defUse[d.ID], u)
				m := a.useDef[node]
				if m == nil {
					m = map[*fortran.Symbol][]*Def{}
					a.useDef[node] = m
				}
				m[ac.Sym] = append(m[ac.Sym], d)
			}
		})
	}

	if !readSymsEqual(oldAcc, newAcc) {
		a.solveLiveness()
	}
	return true
}

type writeKey struct {
	sym     *fortran.Symbol
	partial bool
}

func writesMatch(a, b []Access) bool {
	count := map[writeKey]int{}
	na, nb := 0, 0
	for _, ac := range a {
		if ac.Write {
			count[writeKey{ac.Sym, ac.Partial}]++
			na++
		}
	}
	for _, ac := range b {
		if ac.Write {
			k := writeKey{ac.Sym, ac.Partial}
			if count[k] == 0 {
				return false
			}
			count[k]--
			nb++
		}
	}
	return na == nb
}

func writesIntScalar(acc []Access) bool {
	for _, ac := range acc {
		if ac.Write && ac.Sym.Kind == fortran.SymScalar && ac.Sym.Type == fortran.TypeInteger {
			return true
		}
	}
	return false
}

func readSymsEqual(a, b []Access) bool {
	ra := map[*fortran.Symbol]bool{}
	for _, ac := range a {
		if !ac.Write {
			ra[ac.Sym] = true
		}
	}
	rb := map[*fortran.Symbol]bool{}
	for _, ac := range b {
		if !ac.Write {
			rb[ac.Sym] = true
		}
	}
	if len(ra) != len(rb) {
		return false
	}
	for s := range ra {
		if !rb[s] {
			return false
		}
	}
	return true
}
