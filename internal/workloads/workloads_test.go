package workloads

import (
	"testing"

	"parascope/internal/fortran"
	"parascope/internal/interp"
)

func TestSuiteParses(t *testing.T) {
	for _, w := range All() {
		if _, err := w.Parse(); err != nil {
			t.Errorf("%s: parse: %v", w.Name, err)
		}
	}
}

func TestSuiteMeasure(t *testing.T) {
	names := map[string]bool{}
	for _, w := range All() {
		st, err := w.Measure()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if st.Lines < 15 {
			t.Errorf("%s: only %d lines", w.Name, st.Lines)
		}
		if st.Loops < 2 {
			t.Errorf("%s: only %d loops", w.Name, st.Loops)
		}
		if names[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		names[w.Name] = true
	}
	if len(names) != 9 {
		t.Errorf("suite has %d programs, want 9", len(names))
	}
}

func TestSuiteRunsSequentially(t *testing.T) {
	for _, w := range All() {
		f := w.MustParse()
		out, err := interp.RunCapture(f, 1, w.Input)
		if err != nil {
			t.Errorf("%s: run: %v", w.Name, err)
			continue
		}
		if len(out) == 0 {
			t.Errorf("%s: no output", w.Name)
		}
	}
}

// TestScriptsParallelizeAndPreserveSemantics replays each workload's
// documented user session, then checks the parallelized program
// produces the sequential program's output on 4 workers.
func TestScriptsParallelizeAndPreserveSemantics(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			seq := w.MustParse()
			seqOut, err := interp.RunCapture(seq, 1, w.Input)
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			s, err := w.Session()
			if err != nil {
				t.Fatal(err)
			}
			n, err := w.Script(s)
			if err != nil {
				t.Fatalf("script: %v", err)
			}
			if n == 0 {
				t.Fatal("script parallelized nothing")
			}
			parOut, err := interp.RunCapture(s.File, 4, w.Input)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if ok, why := interp.OutputsEquivalent(seqOut, parOut, 1e-4); !ok {
				t.Errorf("outputs differ (%s):\nseq: %s\npar: %s", why, seqOut, parOut)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("spec77") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestTraitCoverage(t *testing.T) {
	// Every Table 3 row must be exercised by at least one program.
	rows := []Trait{TraitDependence, TraitSections, TraitScalarKill, TraitArrayKill,
		TraitSymbolics, TraitIndexArray, TraitReductions, TraitTransforms}
	for _, tr := range rows {
		found := false
		for _, w := range All() {
			if w.HasTrait(tr) {
				found = true
			}
		}
		if !found {
			t.Errorf("no workload exercises trait %s", tr)
		}
	}
}

// TestSuitePrinterRoundTrip: every workload must survive
// parse -> print -> parse -> print with identical output, and the
// reprinted program must behave identically under execution.
func TestSuitePrinterRoundTrip(t *testing.T) {
	for _, w := range All() {
		f1 := w.MustParse()
		p1 := fortran.Print(f1)
		f2, err := fortran.Parse(w.Name+"-rt.f", p1)
		if err != nil {
			t.Errorf("%s: reprint does not parse: %v", w.Name, err)
			continue
		}
		if p2 := fortran.Print(f2); p1 != p2 {
			t.Errorf("%s: print not idempotent", w.Name)
		}
		want, err := interp.RunCapture(f1, 1, w.Input)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		got, err := interp.RunCapture(f2, 1, w.Input)
		if err != nil {
			t.Fatalf("%s (reprinted): %v", w.Name, err)
		}
		if ok, why := interp.OutputsEquivalent(want, got, 1e-12); !ok {
			t.Errorf("%s: reprinted program behaves differently: %s", w.Name, why)
		}
	}
}

// TestSuiteSimulatedSpeedupShape asserts the e6 shape: spec77 and
// shear scale well at 8 workers; arc3d stays Amdahl-limited.
func TestSuiteSimulatedSpeedupShape(t *testing.T) {
	sim := func(name string) float64 {
		w := ByName(name)
		s, err := w.Session()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Script(s); err != nil {
			t.Fatal(err)
		}
		_, c1, err := interp.RunCaptureSim(s.File, 1, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		_, c8, err := interp.RunCaptureSim(s.File, 8, w.Input)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c1) / float64(c8)
	}
	if v := sim("spec77"); v < 5 {
		t.Errorf("spec77 S(8) = %.2f, want > 5", v)
	}
	if v := sim("shear"); v < 5 {
		t.Errorf("shear S(8) = %.2f, want > 5", v)
	}
	if v := sim("arc3d"); v > 2 {
		t.Errorf("arc3d S(8) = %.2f, want Amdahl-limited (< 2)", v)
	}
}
