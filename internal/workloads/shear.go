package workloads

import (
	"fmt"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

// Shear models a shear-flow relaxation whose sweep loop nest has the
// classic "parallelism in the wrong place" shape: the outer loop
// carries the dependence (columns build on the previous column) while
// the inner loop is parallel but too fine-grained. Loop interchange
// moves the parallel loop outward — the paper's canonical use of the
// transformation catalog (Table 3's "transforms" row).
func Shear() *Workload {
	return &Workload{
		Name:         "shear",
		Description:  "shear-flow column relaxation (interchange showcase)",
		ModeledAfter: "structural relaxation code needing loop interchange (§5)",
		Traits:       []Trait{TraitTransforms, TraitDependence},
		Source: `
      program shear
      integer n, m, i, j
      parameter (n = 150, m = 40)
      real a(150,40), b(150,40), s
      do j = 1, m
         do i = 1, n
            a(i,j) = 0.01*real(i + j)
            b(i,j) = 0.002*real(i)
         enddo
      enddo
      do j = 2, m
         do i = 1, n
            a(i,j) = a(i,j-1)*0.5 + b(i,j)
         enddo
      enddo
      s = 0.0
      do j = 1, m
         do i = 1, n
            s = s + a(i,j)
         enddo
      enddo
      print *, s
      end
`,
		Script: shearScript,
	}
}

// shearScript interchanges the relaxation nest so the dependence-free
// i loop becomes outermost, then parallelizes it.
func shearScript(s *core.Session) (int, error) {
	count := s.AutoParallelize()
	// The relaxation nest stayed serial; find its outer loop.
	var target *fortran.DoStmt
	for _, l := range s.Loops() {
		if l.Do.Parallel || l.Depth != 1 {
			continue
		}
		inner, ok := firstInner(l.Do)
		if !ok {
			continue
		}
		_ = inner
		target = l.Do
	}
	if target == nil {
		return count, fmt.Errorf("shear: serial nest not found")
	}
	if _, err := s.Transform(xform.Interchange{Outer: target}); err != nil {
		return count, fmt.Errorf("shear: interchange: %v", err)
	}
	if _, err := s.Transform(xform.Parallelize{Do: target}); err != nil {
		return count, fmt.Errorf("shear: parallelize after interchange: %v", err)
	}
	return len(s.ParallelLoops()), nil
}

func firstInner(do *fortran.DoStmt) (*fortran.DoStmt, bool) {
	if len(do.Body) == 1 {
		inner, ok := do.Body[0].(*fortran.DoStmt)
		return inner, ok
	}
	return nil, false
}
