package workloads

import (
	"fmt"

	"parascope/internal/core"
	"parascope/internal/dep"
	"parascope/internal/xform"
)

// Onedim models a 1-d particle code whose defining trait is
// *index-array subscripts* (Table 3: "three programs contained index
// arrays in subscript expressions that prevented parallelization").
// The scatter loop updates fld(idx(ip)); no subscript test can
// disprove the carried dependences, but the user knows idx is a
// permutation and deletes them (dependence marking), after which the
// loop parallelizes. The energy diagnostic exercises reduction
// recognition.
func Onedim() *Workload {
	return &Workload{
		Name:         "onedim",
		Description:  "1-d particle scatter with permutation index array",
		ModeledAfter: "particle-in-cell style code with index arrays (Table 3's index-array row)",
		Traits:       []Trait{TraitIndexArray, TraitReductions},
		Source: `
      program onedim
      integer np, ip
      parameter (np = 900)
      integer idx(900)
      real q(900), fld(900), energy
      do ip = 1, np
         idx(ip) = np - ip + 1
         q(ip) = 0.001*real(ip)
         fld(ip) = 0.0
      enddo
      do ip = 1, np
         fld(idx(ip)) = fld(idx(ip)) + q(ip)
      enddo
      energy = 0.0
      do ip = 1, np
         energy = energy + fld(ip)*fld(ip)
      enddo
      print *, energy, fld(1)
      end
`,
		Script: onedimScript,
	}
}

// onedimScript replays the documented index-array interaction: reject
// the pending dependences on fld in the scatter loop (the user knows
// idx is a permutation), then parallelize.
func onedimScript(s *core.Session) (int, error) {
	count := s.AutoParallelize()
	// Find the scatter loop: the serial one whose deps are blocked by
	// the index array.
	scatter := -1
	for i, l := range s.Loops() {
		if l.Do.Parallel {
			continue
		}
		if err := s.SelectLoop(i + 1); err != nil {
			return count, err
		}
		for _, d := range s.SelectionDeps(core.DepFilter{CarriedOnly: true}) {
			if d.Reason == "index-array" {
				scatter = i + 1
			}
		}
	}
	if scatter < 0 {
		return count, fmt.Errorf("onedim: no index-array-blocked loop found")
	}
	if err := s.SelectLoop(scatter); err != nil {
		return count, err
	}
	for _, d := range s.SelectionDeps(core.DepFilter{CarriedOnly: true, Sym: "fld"}) {
		if d.Mark == dep.MarkPending {
			if err := s.MarkDep(d.ID, dep.MarkRejected); err != nil {
				return count, err
			}
		}
	}
	do := s.SelectedLoop().Do
	if _, err := s.Transform(xform.Parallelize{Do: do}); err != nil {
		return count, fmt.Errorf("onedim: parallelize after deletion: %v", err)
	}
	return count + 1, nil
}
