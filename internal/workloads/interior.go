package workloads

import "parascope/internal/core"

// Interior models an interior-point stencil written in the
// "linearized array" style Singh and Hennessy observed interfering
// with compiler analysis ("certain programming styles interfere with
// compiler analysis. These include linearized arrays and specialized
// use of the boundary elements"): the 2-d grid lives in a 1-d array
// indexed by (j-1)*n + i, so every subscript is a multi-index (MIV)
// expression that exercises the GCD/Banerjee tier of the dependence
// suite. The red-sweep loop is parallel (proven by the MIV tests);
// the row-recurrence is not; boundary elements are handled by peeled
// special cases.
func Interior() *Workload {
	return &Workload{
		Name:         "interior",
		Description:  "linearized-array interior stencil (MIV subscripts)",
		ModeledAfter: "linearized-array codes from the Singh–Hennessy study (§6)",
		Traits:       []Trait{TraitDependence, TraitReductions},
		Source: `
      program interior
      integer n, i, j
      parameter (n = 40)
      real g(1600), r(1600), resid
      do j = 1, n
         do i = 1, n
            g((j-1)*40 + i) = 0.01*real(i + j)
            r((j-1)*40 + i) = 0.0
         enddo
      enddo
      do j = 2, 39
         do i = 2, 39
            r((j-1)*40 + i) = g((j-1)*40 + i - 1) + g((j-1)*40 + i + 1)
     &                      + g((j-2)*40 + i) + g(j*40 + i)
     &                      - 4.0*g((j-1)*40 + i)
         enddo
      enddo
      do j = 2, 39
         do i = 3, 39
            g((j-1)*40 + i) = g((j-1)*40 + i - 1)*0.5
     &                      + r((j-1)*40 + i)*0.25
         enddo
      enddo
      resid = 0.0
      do j = 1, n
         do i = 1, n
            resid = resid + abs(r((j-1)*40 + i))
         enddo
      enddo
      print *, resid, g(820)
      end
`,
		Script: func(s *core.Session) (int, error) {
			return s.AutoParallelize(), nil
		},
	}
}
