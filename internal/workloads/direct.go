package workloads

import "parascope/internal/core"

// Direct models a dense direct solver: dot-product reductions and the
// matrix-vector inner loops parallelize; the back-substitution
// recurrence does not. The in-place reversal swap is the
// weak-crossing SIV showcase: its crossing point (i + i' = 121) lies
// outside the iteration range, so the exact test proves the two
// halves disjoint and the swap loop parallel.
func Direct() *Workload {
	return &Workload{
		Name:         "direct",
		Description:  "direct solver kernels: dot products, update, back-substitution",
		ModeledAfter: "dense linear algebra code exercising the exact dependence tests",
		Traits:       []Trait{TraitDependence, TraitReductions},
		Source: `
      program direct
      integer n, i, j
      parameter (n = 120)
      real a(120,120), x(120), y(120), dot, t
      do j = 1, n
         do i = 1, n
            a(i,j) = 1.0/real(i + j)
         enddo
      enddo
      do i = 1, n
         x(i) = 0.01*real(i)
         y(i) = 0.0
      enddo
      dot = 0.0
      do i = 1, n
         dot = dot + x(i)*x(i)
      enddo
      do j = 1, n
         do i = 1, n
            y(i) = y(i) + a(i,j)*x(j)
         enddo
      enddo
      do i = 1, 60
         t = y(i)
         y(i) = y(121 - i)
         y(121 - i) = t
      enddo
      do i = 2, n
         y(i) = y(i) + y(i-1)*0.001
      enddo
      print *, dot, y(60)
      end
`,
		Script: func(s *core.Session) (int, error) {
			return s.AutoParallelize(), nil
		},
	}
}
