package workloads

import (
	"fmt"

	"parascope/internal/core"
)

// Arc3d models the CFD code arc3d (NASA Ames). Two traits from the
// paper: (1) the filter loop indexes q with a symbolic plane offset
// (the filter3d example of §4), so the user must assert the offset's
// magnitude before the loop parallelizes; (2) the plane-sweep loop
// re-fills a whole work array each iteration inside a called
// procedure — interprocedural *array kill* analysis recognizes the
// overwrite, but array privatization is not available (matching the
// paper, where arc3d's sweep could not be parallelized), so that loop
// stays serial.
func Arc3d() *Workload {
	return &Workload{
		Name:         "arc3d",
		Description:  "implicit CFD solver (filter + plane sweeps)",
		ModeledAfter: "arc3d — CFD code from NASA Ames (filter3d routine)",
		Traits:       []Trait{TraitSymbolics, TraitArrayKill, TraitReductions, TraitSections},
		Input:        []float64{500},
		Source: `
      program arc3d
      integer n, nk, jp, j, k
      parameter (n = 400, nk = 20)
      real q(1000), work(64), res
      read(*,*) jp
      do j = 1, 1000
         q(j) = 0.001*real(mod(j, 31)) + 0.5
      enddo
      do j = 1, n
         q(j) = q(j + jp)*0.25 + q(j)*0.5
      enddo
      do k = 1, nk
         call sweep(work, q, k)
      enddo
      res = 0.0
      do j = 1, n
         res = max(res, abs(q(j)))
      enddo
      print *, res, q(100)
      end
      subroutine sweep(w, q, k)
      integer k, i
      real w(64), q(1000), s
      do i = 1, 64
         w(i) = real(i + k)*0.01
      enddo
      s = 0.0
      do i = 1, 64
         s = s + w(i)
      enddo
      do i = 1, 64
         q(k + i) = q(k + i) + s*0.0001
      enddo
      end
`,
		Script: arc3dScript,
	}
}

// arc3dScript replays the documented interaction: the filter loop is
// blocked by the symbolic offset jp until the user asserts its
// magnitude (matching the program's input); the sweep loop stays
// serial because privatizing the work array is beyond the tool, as
// the paper reports for arc3d.
func arc3dScript(s *core.Session) (int, error) {
	before := s.AutoParallelize()
	if err := s.Assert("jp .ge. 500"); err != nil {
		return before, err
	}
	after := s.AutoParallelize()
	total := before + after
	if after == 0 {
		return total, fmt.Errorf("arc3d: the assertion unlocked no loop")
	}
	return total, nil
}
