package workloads

import "parascope/internal/core"

// Nxsns models the quantum-mechanics code nxsns (1400 lines, 11
// procedures, contributed by John Engle). Its defining trait, called
// out explicitly in the paper ("In the program nxsns, interprocedural
// scalar Kill analysis reveals a scalar variable is killed in a
// procedure invoked inside a loop"): the flux loop calls a
// cross-section routine that definitely assigns its output scalar, so
// interprocedural Kill analysis is what makes the scalar privatizable
// and the loop parallel.
func Nxsns() *Workload {
	return &Workload{
		Name:         "nxsns",
		Description:  "neutron cross-section flux sweep",
		ModeledAfter: "nxsns — quantum mechanics code, 1400 lines, 11 procedures",
		Traits:       []Trait{TraitScalarKill, TraitReductions, TraitDependence},
		Source: `
      program nxsns
      integer n, i
      parameter (n = 800)
      real e(800), w(800), flux(800)
      real sigma, total
      do i = 1, n
         e(i) = 0.5 + 0.01*real(mod(i, 53))
         w(i) = 1.0/real(i)
      enddo
      do i = 1, n
         call cross(e(i), sigma)
         flux(i) = sigma*w(i)
      enddo
      total = 0.0
      do i = 1, n
         total = total + flux(i)
      enddo
      print *, total
      end
      subroutine cross(en, sig)
      real en, sig
      if (en .gt. 1.0) then
         sig = 2.0/en
      else
         sig = 1.0 + en*en
      endif
      end
`,
		Script: func(s *core.Session) (int, error) {
			return s.AutoParallelize(), nil
		},
	}
}
