package workloads

import "parascope/internal/core"

// Spec77 models the weather-simulation code spec77 (5600 lines, 67
// procedures, contributed by Steve Poole and Lo Hsieh in the paper's
// study) at reduced scale. Its defining trait is the gloop pattern:
// the latitude loop invokes a subroutine that updates one grid column
// per call, so parallelizing it requires interprocedural regular
// section analysis; the time-step loop carries a true dependence and
// must stay serial; the energy diagnostic is a sum reduction.
func Spec77() *Workload {
	return &Workload{
		Name:         "spec77",
		Description:  "weather simulation (spectral grid sweep)",
		ModeledAfter: "spec77 — weather simulation code, 5600 lines, 67 procedures",
		Traits:       []Trait{TraitSections, TraitReductions, TraitDependence},
		Source: `
      program spec77
      integer nlon, nlat, nstep
      parameter (nlon = 64, nlat = 32, nstep = 4)
      integer ilat, istep, k
      real u(64,32), v(64,32), energy
      do ilat = 1, nlat
         call initlat(u, v, ilat)
      enddo
      do istep = 1, nstep
         do ilat = 1, nlat
            call gloop(u, v, ilat)
         enddo
      enddo
      energy = 0.0
      do ilat = 1, nlat
         do k = 1, nlon
            energy = energy + u(k,ilat)*u(k,ilat) + v(k,ilat)*v(k,ilat)
         enddo
      enddo
      print *, energy
      end
      subroutine initlat(u, v, j)
      integer nlon, j, k
      parameter (nlon = 64)
      real u(64,32), v(64,32)
      do k = 1, nlon
         u(k,j) = real(k + j)*0.01
         v(k,j) = real(k - j)*0.01
      enddo
      end
      subroutine gloop(u, v, j)
      integer nlon, j, k
      parameter (nlon = 64)
      real u(64,32), v(64,32), t
      do k = 2, nlon
         t = u(k,j) + v(k-1,j)
         u(k,j) = t*0.99
         v(k,j) = v(k,j) + t*0.01
      enddo
      end
`,
		Script: spec77Script,
	}
}

// spec77Script mirrors the paper's session: with regular sections on,
// the latitude loops parallelize automatically; the time-step loop is
// left serial.
func spec77Script(s *core.Session) (int, error) {
	return s.AutoParallelize(), nil
}
