package workloads

import (
	"fmt"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/xform"
)

// Slab2d models the code slab2d, whose paper trait is that analysis
// alone is not enough: "To perform array privatization in slab2d,
// kill analysis must be combined with loop transformations." Here the
// main update loop mixes an independent computation with a running
// recurrence; *loop distribution* separates them so the independent
// part parallelizes, while the recurrence component stays serial —
// the transformation-driven parallelization of Table 3's
// "transforms" row.
func Slab2d() *Workload {
	return &Workload{
		Name:         "slab2d",
		Description:  "slab diffusion update with running accumulation",
		ModeledAfter: "slab2d — 2-d slab code requiring kill analysis plus loop transformations",
		Traits:       []Trait{TraitTransforms, TraitArrayKill, TraitDependence},
		Source: `
      program slab2d
      integer n, i
      parameter (n = 700)
      real a(700), b(700), c(700), acc(700)
      real t
      do i = 1, n
         a(i) = 0.5 + 0.002*real(mod(i, 41))
         c(i) = 1.0/real(i)
         acc(i) = 0.0
      enddo
      do i = 2, n
         t = a(i)*2.0 + a(i-1)*0.5
         b(i) = t + c(i)
         acc(i) = acc(i-1) + b(i)
      enddo
      print *, b(350), acc(700)
      end
`,
		Script: slab2dScript,
	}
}

// slab2dScript distributes the mixed loop, then parallelizes the
// independent component; the accumulation loop remains serial.
func slab2dScript(s *core.Session) (int, error) {
	// Find the update loop (the one whose body assigns b).
	var target *fortran.DoStmt
	for _, l := range s.Loops() {
		for _, st := range l.Do.Body {
			if as, ok := st.(*fortran.AssignStmt); ok && as.Lhs.Name == "b" {
				target = l.Do
			}
		}
	}
	if target == nil {
		return 0, fmt.Errorf("slab2d: update loop not found")
	}
	if _, err := s.Transform(xform.Distribute{Do: target}); err != nil {
		return 0, fmt.Errorf("slab2d: distribute: %v", err)
	}
	return s.AutoParallelize(), nil
}
