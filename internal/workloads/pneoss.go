package workloads

import "parascope/internal/core"

// Pneoss models the thermodynamics code pneoss (350 lines, 5
// procedures, contributed by Mary Zosel of LLNL). Its loops carry
// scalar temporaries that scalar data-flow analysis proves
// privatizable, plus a guarded equation-of-state branch and a final
// sum reduction — the "dependence analysis plus privatization
// suffices" case of Table 3.
func Pneoss() *Workload {
	return &Workload{
		Name:         "pneoss",
		Description:  "thermodynamics equation-of-state sweep",
		ModeledAfter: "pneoss — thermodynamics code, 350 lines, 5 procedures",
		Traits:       []Trait{TraitDependence, TraitReductions},
		Source: `
      program pneoss
      integer n, i
      parameter (n = 600)
      real rho(600), e(600), p(600), cs(600)
      real t, c, s
      call setup(rho, e, n)
      do i = 1, n
         t = e(i)/(1.5*rho(i))
         c = sqrt(1.4*t)
         if (t .gt. 2.5) then
            p(i) = rho(i)*t*1.01
         else
            p(i) = rho(i)*t + 0.1*c
         endif
         cs(i) = c
      enddo
      s = 0.0
      do i = 1, n
         s = s + p(i) + 0.001*cs(i)
      enddo
      print *, s
      end
      subroutine setup(rho, e, n)
      integer n, i
      real rho(n), e(n)
      do i = 1, n
         rho(i) = 1.0 + 0.001*real(i)
         e(i) = 2.0 + 0.005*real(mod(i, 97))
      enddo
      end
`,
		Script: func(s *core.Session) (int, error) {
			return s.AutoParallelize(), nil
		},
	}
}
