// Package workloads provides the synthetic benchmark suite modeled on
// the programs of the paper's evaluation (Table 1). The original
// suite consisted of proprietary user codes (spec77, pneoss, nxsns,
// arc3d, slab2d, …); each synthetic program here reproduces, at
// reduced size, the *parallelization-relevant traits* the paper
// reports for its original — calls inside loops needing regular
// sections, scalars killed across procedures, symbolic subscript
// terms, index arrays, reductions, array kills — so the analysis and
// transformation experiments exercise the same code paths.
//
// Every program runs under the interpreter and prints a checksum, so
// transformed versions can be validated and timed.
package workloads

import (
	"fmt"

	"parascope/internal/core"
	"parascope/internal/fortran"
)

// Trait names a capability a program needs for parallelization,
// matching the rows of the paper's Table 3.
type Trait string

// Traits (Table 3 rows).
const (
	TraitDependence Trait = "dependence"  // plain dependence analysis finds parallel loops
	TraitConstants  Trait = "constants"   // interprocedural constants
	TraitSections   Trait = "sections"    // regular section analysis of calls
	TraitScalarKill Trait = "scalar-kill" // interprocedural scalar kill
	TraitArrayKill  Trait = "array-kill"  // interprocedural array kill
	TraitSymbolics  Trait = "symbolics"   // symbolic terms need assertions
	TraitIndexArray Trait = "index-array" // index-array subscripts need user knowledge
	TraitReductions Trait = "reductions"  // reduction recognition
	TraitTransforms Trait = "transforms"  // restructuring (interchange, distribution …)
)

// Workload is one program of the suite.
type Workload struct {
	Name        string
	Description string
	// ModeledAfter records the original program and contributor from
	// the paper's Table 1 that this synthetic code stands in for.
	ModeledAfter string
	Source       string
	// Traits lists what the program needs (Table 3 expectations).
	Traits []Trait
	// Script replays the documented user session that parallelizes
	// the program (assertions, dependence deletions, transformations).
	// It returns the number of loops parallelized.
	Script func(s *core.Session) (int, error)
	// Input supplies READ data when the program runs.
	Input []float64
}

// HasTrait reports whether the workload carries the trait.
func (w *Workload) HasTrait(t Trait) bool {
	for _, x := range w.Traits {
		if x == t {
			return true
		}
	}
	return false
}

// Parse returns a freshly parsed copy of the program.
func (w *Workload) Parse() (*fortran.File, error) {
	return fortran.Parse(w.Name+".f", w.Source)
}

// MustParse parses or panics.
func (w *Workload) MustParse() *fortran.File {
	f, err := w.Parse()
	if err != nil {
		panic(fmt.Sprintf("workload %s: %v", w.Name, err))
	}
	return f
}

// Session opens a fresh editor session on the program.
func (w *Workload) Session() (*core.Session, error) {
	f, err := w.Parse()
	if err != nil {
		return nil, err
	}
	return core.NewSession(f), nil
}

// Stats summarizes a workload's size (Table 1 columns).
type Stats struct {
	Name       string
	Lines      int
	Procedures int
	Loops      int
}

// Measure computes the Table 1 row for the workload.
func (w *Workload) Measure() (Stats, error) {
	f, err := w.Parse()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Name: w.Name, Procedures: len(f.Units)}
	for _, line := range splitLines(w.Source) {
		if trimmed := trim(line); trimmed != "" {
			st.Lines++
		}
	}
	for _, u := range f.Units {
		fortran.WalkStmts(u.Body, func(s fortran.Stmt) bool {
			if _, ok := s.(*fortran.DoStmt); ok {
				st.Loops++
			}
			return true
		})
	}
	return st, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func trim(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

// All returns the suite in Table 1 order.
func All() []*Workload {
	return []*Workload{
		Spec77(),
		Pneoss(),
		Nxsns(),
		Arc3d(),
		Slab2d(),
		Onedim(),
		Shear(),
		Direct(),
		Interior(),
	}
}

// ByName finds a workload.
func ByName(name string) *Workload {
	for _, w := range All() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
