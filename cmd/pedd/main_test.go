package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildPedd compiles the pedd binary into a test temp dir.
func buildPedd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pedd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestBindFailureReportedBeforeListening: when the port is taken,
// pedd must exit non-zero with the bind error and must never claim to
// be listening — the regression this pins is the old code logging
// "listening on" before ListenAndServe had bound the socket.
func TestBindFailureReportedBeforeListening(t *testing.T) {
	bin := buildPedd(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cmd := exec.Command(bin, "-addr", ln.Addr().String())
	out, err := cmd.CombinedOutput()
	var exitErr *exec.ExitError
	if err == nil || !errors.As(err, &exitErr) {
		t.Fatalf("pedd on a taken port: err=%v, want non-zero exit\noutput: %s", err, out)
	}
	if !strings.Contains(string(out), "pedd:") {
		t.Errorf("bind failure not reported: %s", out)
	}
	if strings.Contains(string(out), "listening on") {
		t.Errorf("pedd claimed to listen despite bind failure:\n%s", out)
	}
}

// peddInstance is a running daemon started on ephemeral ports.
type peddInstance struct {
	cmd     *exec.Cmd
	addr    string // main serving address
	opsAddr string // ops address ("" if not enabled)
	output  *bytes.Buffer
}

var (
	listenRe    = regexp.MustCompile(`pedd: listening on (\S+)`)
	opsListenRe = regexp.MustCompile(`pedd: ops listening on (\S+)`)
)

// startPedd launches pedd -addr :0 [-opsaddr :0] plus any extra flags
// and scans its stderr until both listen lines appear, proving the
// logged addresses carry the real kernel-assigned ports. Lines logged
// before "listening on" — the recovery summary, for one — are in
// inst.output by the time startPedd returns.
func startPedd(t *testing.T, withOps bool, extra ...string) *peddInstance {
	t.Helper()
	bin := buildPedd(t)
	args := []string{"-addr", "127.0.0.1:0", "-accesslog=false"}
	if withOps {
		args = append(args, "-opsaddr", "127.0.0.1:0")
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	inst := &peddInstance{cmd: cmd, output: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	need := 1
	if withOps {
		need = 2
	}
	for need > 0 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("pedd exited before listening:\n%s", inst.output.String())
			}
			fmt.Fprintln(inst.output, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				inst.addr = m[1]
				need--
			} else if m := opsListenRe.FindStringSubmatch(line); m != nil {
				inst.opsAddr = m[1]
				need--
			}
		case <-deadline:
			t.Fatalf("pedd did not report listening in time:\n%s", inst.output.String())
		}
	}
	// Keep draining so the child never blocks on a full stderr pipe.
	go func() {
		for line := range lines {
			fmt.Fprintln(inst.output, line)
		}
	}()
	return inst
}

// TestAddrZeroLogsRealPortAndServes: -addr :0 must log the actual
// bound port (not ":0"), that port must serve, the ops listener must
// expose /metrics and pprof, and SIGINT must produce a clean exit 0.
func TestAddrZeroLogsRealPortAndServes(t *testing.T) {
	inst := startPedd(t, true)

	for _, addr := range []string{inst.addr, inst.opsAddr} {
		if _, port, err := net.SplitHostPort(addr); err != nil || port == "0" || port == "" {
			t.Fatalf("logged address %q does not carry a real port", addr)
		}
	}

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("http://" + inst.addr + "/healthz"); code != http.StatusOK {
		t.Errorf("healthz on logged addr: status %d", code)
	}
	code, body := get("http://" + inst.opsAddr + "/metrics")
	if code != http.StatusOK {
		t.Errorf("ops /metrics: status %d", code)
	}
	for _, want := range []string{"pedd_http_requests_total", "pedd_sessions_live", "pedd_analysis_phase_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("ops /metrics missing %s", want)
		}
	}
	if code, _ := get("http://" + inst.opsAddr + "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("ops pprof: status %d", code)
	}
	// The serving port must NOT expose the ops surface.
	if code, _ := get("http://" + inst.addr + "/metrics"); code == http.StatusOK {
		t.Error("serving port exposes /metrics; ops surface must be isolated")
	}

	if err := inst.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := inst.cmd.Wait(); err != nil {
		t.Errorf("clean shutdown exited non-zero: %v\n%s", err, inst.output.String())
	}
}
