// Command pedd is the ParaScope Editor daemon: it hosts many
// concurrent editor sessions behind an HTTP/JSON API so thin clients
// (ped -remote, curl, editors) get sub-second dependence analysis
// without running the analyses themselves. Sessions are serialized on
// per-session actor goroutines, evicted after an idle TTL, and opens
// of already-analyzed source are served from a content-hash cache.
//
// Usage:
//
//	pedd                      # listen on :7473
//	pedd -addr :8080 -ttl 10m -cache 256 -workers 4
//	pedd -opsaddr 127.0.0.1:7474   # also expose /metrics and pprof
//	pedd -datadir /var/lib/pedd -fsync always   # crash-safe sessions
//
// Then (session IDs are minted per open — read yours from the open
// response):
//
//	ID=$(curl -s localhost:7473/v1/sessions -d '{"workload":"arc3d"}' | jq -r .id)
//	curl -s localhost:7473/v1/sessions/$ID/cmd -d '{"line":"loops"}'
//	curl -s localhost:7474/metrics
//
// The ops listener (-opsaddr, off by default) serves the Prometheus
// text exposition at /metrics and net/http/pprof under /debug/pprof/,
// on a port separate from the serving one so profiling and scraping
// never contend with request traffic. Every request carries an
// X-Request-ID (generated when the client sends none) that appears in
// the structured access log on stderr and in error response bodies.
//
// With -datadir set, every session keeps a write-ahead journal of its
// mutating commands under that directory and is rebuilt — byte for
// byte — at the next start after a crash or kill -9. -fsync picks the
// durability/latency trade-off (always, interval, never) and
// -snapshotevery bounds replay length by periodically compacting each
// journal to a snapshot. A session whose journal hits an I/O error
// degrades to read-only (reads 200, mutations 503) instead of taking
// the daemon down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parascope/internal/faultpoint"
	"parascope/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":7473", "listen address")
	opsAddr := flag.String("opsaddr", "", "ops listen address for GET /metrics and /debug/pprof/ (empty = disabled)")
	ttl := flag.Duration("ttl", 30*time.Minute, "evict sessions idle longer than this (0 disables)")
	cacheSize := flag.Int("cache", 128, "analysis cache capacity in programs (0 disables)")
	workers := flag.Int("workers", 0, "per-open analysis worker pool size (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("reqtimeout", server.DefaultReqTimeout, "per-request deadline; queued commands past it get 504 (negative disables)")
	maxBody := flag.Int64("maxbody", server.DefaultMaxBodyBytes, "request body size cap in bytes; larger bodies get 413 (negative disables)")
	maxSessions := flag.Int("maxsessions", 0, "live session cap; opens past it get 503 (0 = unlimited)")
	queueDepth := flag.Int("queue", 0, "per-session pending-command queue depth; full queues get 429 (0 = default)")
	accessLog := flag.Bool("accesslog", true, "write one structured log line per request to stderr")
	dataDir := flag.String("datadir", "", "directory for session journals; sessions survive restarts (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "interval", "journal fsync policy: always, interval, or never")
	snapEvery := flag.Int("snapshotevery", 64, "compact a session journal to a snapshot after this many mutations (0 = never)")
	planWorkers := flag.Int("planworkers", 0, "concurrent speculative plan searches daemon-wide; excess requests get 429 (0 = 2)")
	planTimeout := flag.Duration("plantimeout", 0, "default wall-clock budget per plan search (0 = planner default)")
	planCache := flag.Int("plancache", 0, "plan result cache capacity in searches (0 = 32)")
	faults := flag.String("faults", "", "chaos testing: arm fault injections, e.g. journal-append=delay:25ms,plan-fork=panic")
	disableBackends := flag.String("disable-backends", "", "comma-separated execution backends POST /run refuses with 501 (e.g. compile)")
	maxRuns := flag.Int("maxruns", 0, "concurrent program executions daemon-wide; excess runs get 429 (0 = 2x GOMAXPROCS, negative = unbounded)")
	runTimeout := flag.Duration("runtimeout", 0, "default per-run wall budget before the governor kills it (0 = 60s, negative = none)")
	maxRunOut := flag.Int64("maxrunout", 0, "per-run captured stdout cap in bytes (0 = 8MiB, negative = unbounded)")
	maxRunRSS := flag.Int64("maxrunrss", 0, "kill compiled runs past this resident-set size in bytes (0 = 1GiB, negative = off)")
	flag.Parse()

	if err := faultpoint.ArmSpec(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
		return 2
	}
	if *faults != "" {
		log.Printf("pedd: CHAOS: faults armed: %s", *faults)
	}

	fsync, err := server.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
		return 2
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
			return 1
		}
	}

	metrics := server.NewMetrics()
	mgr := server.NewManager(server.Config{
		TTL:            *ttl,
		CacheSize:      *cacheSize,
		Workers:        *workers,
		MaxSessions:    *maxSessions,
		QueueDepth:     *queueDepth,
		DataDir:        *dataDir,
		Fsync:          fsync,
		SnapshotEvery:  *snapEvery,
		Metrics:        metrics,
		PlanWorkers:    *planWorkers,
		PlanTimeout:    *planTimeout,
		PlanCacheSize:  *planCache,
		MaxRuns:        *maxRuns,
		RunTimeout:     *runTimeout,
		RunOutputBytes: *maxRunOut,
		RunRSSBytes:    *maxRunRSS,
	})
	if *dataDir != "" {
		st, err := mgr.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
			return 1
		}
		log.Printf("pedd: recovery: %s (datadir %s, fsync %s)", st, *dataDir, fsync)
	}
	ready := &server.Readiness{}
	opts := server.Options{ReqTimeout: *reqTimeout, MaxBodyBytes: *maxBody, Metrics: metrics, Ready: ready}
	if *disableBackends != "" {
		opts.DisabledBackends = strings.Split(*disableBackends, ",")
	}
	if *accessLog {
		opts.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := &http.Server{
		Handler:           server.NewWith(mgr, opts),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Bind before claiming to listen: a port-in-use failure must be
	// reported immediately (and exclusively), and -addr :0 must log
	// the port the kernel actually picked.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
		return 1
	}
	var opsSrv *http.Server
	var opsLn net.Listener
	if *opsAddr != "" {
		opsLn, err = net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pedd: ops: %v\n", err)
			_ = ln.Close()
			return 1
		}
		opsSrv = &http.Server{
			Handler:           server.OpsHandler(metrics, ready),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	log.Printf("pedd: listening on %s (ttl %s, cache %d)", ln.Addr(), *ttl, *cacheSize)
	if opsSrv != nil {
		log.Printf("pedd: ops listening on %s (/metrics, /debug/pprof/)", opsLn.Addr())
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && err != http.ErrServerClosed {
				log.Printf("pedd: ops: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	log.Printf("pedd: shutting down")
	// Flip readiness before draining: rolling restarts and the cluster
	// gateway see /readyz go 503 and stop sending new work while the
	// in-flight requests below complete.
	ready.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	code := 0
	// A failed drain (connections still active at the deadline) is an
	// abnormal stop: say so and exit non-zero so orchestrators can
	// tell it from a clean one.
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("pedd: shutdown: drain incomplete: %v", err)
		code = 1
	}
	if opsSrv != nil {
		_ = opsSrv.Close()
	}
	mgr.Shutdown()
	return code
}
