// Command pedd is the ParaScope Editor daemon: it hosts many
// concurrent editor sessions behind an HTTP/JSON API so thin clients
// (ped -remote, curl, editors) get sub-second dependence analysis
// without running the analyses themselves. Sessions are serialized on
// per-session actor goroutines, evicted after an idle TTL, and opens
// of already-analyzed source are served from a content-hash cache.
//
// Usage:
//
//	pedd                      # listen on :7473
//	pedd -addr :8080 -ttl 10m -cache 256 -workers 4
//
// Then:
//
//	curl -s localhost:7473/v1/sessions -d '{"workload":"arc3d"}'
//	curl -s localhost:7473/v1/sessions/s1/cmd -d '{"line":"loops"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parascope/internal/server"
)

func main() {
	addr := flag.String("addr", ":7473", "listen address")
	ttl := flag.Duration("ttl", 30*time.Minute, "evict sessions idle longer than this (0 disables)")
	cacheSize := flag.Int("cache", 128, "analysis cache capacity in programs (0 disables)")
	workers := flag.Int("workers", 0, "per-open analysis worker pool size (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("reqtimeout", server.DefaultReqTimeout, "per-request deadline; queued commands past it get 504 (negative disables)")
	maxBody := flag.Int64("maxbody", server.DefaultMaxBodyBytes, "request body size cap in bytes; larger bodies get 413 (negative disables)")
	maxSessions := flag.Int("maxsessions", 0, "live session cap; opens past it get 503 (0 = unlimited)")
	queueDepth := flag.Int("queue", 0, "per-session pending-command queue depth; full queues get 429 (0 = default)")
	flag.Parse()

	mgr := server.NewManager(server.Config{
		TTL:         *ttl,
		CacheSize:   *cacheSize,
		Workers:     *workers,
		MaxSessions: *maxSessions,
		QueueDepth:  *queueDepth,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.NewWith(mgr, server.Options{ReqTimeout: *reqTimeout, MaxBodyBytes: *maxBody}),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("pedd: listening on %s (ttl %s, cache %d)", *addr, *ttl, *cacheSize)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "pedd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("pedd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	mgr.Shutdown()
}
