package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// These tests exercise the durability layer the only way that proves
// it: a real pedd process, a real kill -9, a real restart on the same
// datadir. Everything in-process (internal/server's recovery tests)
// can only simulate the crash; here the kernel delivers it.

// peddClient wraps the HTTP calls the crash tests need.
type peddClient struct {
	t    *testing.T
	addr string
}

func (c *peddClient) post(path, body string) (int, string) {
	c.t.Helper()
	resp, err := http.Post("http://"+c.addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		c.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (c *peddClient) get(path string) (int, string) {
	c.t.Helper()
	resp, err := http.Get("http://" + c.addr + path)
	if err != nil {
		c.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func (c *peddClient) open(workload string) string {
	c.t.Helper()
	code, body := c.post("/v1/sessions", `{"workload":"`+workload+`"}`)
	if code != http.StatusCreated {
		c.t.Fatalf("open: %d (%s)", code, body)
	}
	var got struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil || got.ID == "" {
		c.t.Fatalf("open response: %v (%s)", err, body)
	}
	return got.ID
}

// cmd runs a REPL line and returns the command output. It accepts
// command-level failure (the line is still journaled) but not
// transport failure.
func (c *peddClient) cmd(id, line string) string {
	c.t.Helper()
	code, body := c.post("/v1/sessions/"+id+"/cmd", `{"line":"`+line+`"}`)
	if code != http.StatusOK && code != http.StatusUnprocessableEntity {
		c.t.Fatalf("cmd %q: %d (%s)", line, code, body)
	}
	var got struct {
		Output string `json:"output"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		c.t.Fatalf("cmd %q response: %v (%s)", line, err, body)
	}
	return got.Output
}

// TestCrashRecoveryKillDash9: mutate a session, kill the daemon with
// SIGKILL while one more mutation is in flight, restart on the same
// datadir, and require the same session ID with a byte-identical
// program and identical dependence answers.
func TestCrashRecoveryKillDash9(t *testing.T) {
	dir := t.TempDir()
	inst := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	cl := &peddClient{t: t, addr: inst.addr}

	id := cl.open("direct")
	cl.cmd(id, "loop 1")
	cl.cmd(id, "apply parallelize 1")
	want := cl.cmd(id, "save")
	if !strings.Contains(want, "doall") {
		t.Fatalf("parallelize left no annotation; save output:\n%s", want)
	}
	_, wantDeps := cl.get("/v1/sessions/" + id + "/deps")

	// Fire one more mutation and SIGKILL the daemon while it is (or
	// may be) mid-flight — either outcome is legal, but the journal
	// must never be left in a state that breaks recovery of the
	// acknowledged prefix.
	go func() {
		resp, err := http.Post("http://"+inst.addr+"/v1/sessions/"+id+"/cmd",
			"application/json", strings.NewReader(`{"line":"undo"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := inst.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = inst.cmd.Wait()

	inst2 := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	if out := inst2.output.String(); !strings.Contains(out, "pedd: recovery: recovered 1") {
		t.Fatalf("restart did not report a recovery:\n%s", out)
	}
	cl2 := &peddClient{t: t, addr: inst2.addr}
	code, listing := cl2.get("/v1/sessions")
	if code != http.StatusOK || !strings.Contains(listing, id) {
		t.Fatalf("recovered daemon does not list session %s: %d %s", id, code, listing)
	}

	got := cl2.cmd(id, "save")
	// The racing undo either committed (journaled before the kill) or
	// it didn't; the recovered source must be exactly one of the two
	// acknowledged states, never a hybrid.
	preUndo := want
	postUndo := strings.Replace(want, "c$par doall private(j,i)\n", "", 1)
	if got != preUndo && got != postUndo {
		t.Errorf("recovered source matches neither pre- nor post-undo state:\n%s", got)
	}
	if got == preUndo {
		_, gotDeps := cl2.get("/v1/sessions/" + id + "/deps")
		if gotDeps != wantDeps {
			t.Errorf("recovered deps differ:\nwant %s\ngot  %s", wantDeps, gotDeps)
		}
	}
	// The recovered session is writable.
	cl2.cmd(id, "loop 1")
}

// TestCrashRecoveryRepeatedKills: crash the daemon several times in a
// row on the same datadir; each restart must recover, and the session
// must keep accumulating state across the crashes.
func TestCrashRecoveryRepeatedKills(t *testing.T) {
	dir := t.TempDir()
	inst := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	cl := &peddClient{t: t, addr: inst.addr}
	id := cl.open("direct")
	cl.cmd(id, "loop 1")
	var want string
	for round := 0; round < 3; round++ {
		if round == 1 {
			cl.cmd(id, "apply parallelize 1")
		}
		want = cl.cmd(id, "save")
		if err := inst.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = inst.cmd.Wait()
		inst = startPedd(t, false, "-datadir", dir, "-fsync", "always")
		cl = &peddClient{t: t, addr: inst.addr}
		if out := inst.output.String(); !strings.Contains(out, "recovered 1") {
			t.Fatalf("round %d: restart did not recover:\n%s", round, out)
		}
		if got := cl.cmd(id, "save"); got != want {
			t.Fatalf("round %d: source diverged after crash:\nwant %s\ngot  %s", round, want, got)
		}
	}
}

// TestSIGTERMDrainsAndFlushes: SIGTERM with a mutating request in
// flight must exit 0 (drained, journals flushed), and the next start
// must recover the session including that final mutation.
func TestSIGTERMDrainsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	// -fsync never: only the shutdown-path flush makes this durable,
	// which is exactly what the test pins.
	inst := startPedd(t, false, "-datadir", dir, "-fsync", "never")
	cl := &peddClient{t: t, addr: inst.addr}
	id := cl.open("direct")
	cl.cmd(id, "loop 1")

	inflight := make(chan string, 1)
	go func() {
		resp, err := http.Post("http://"+inst.addr+"/v1/sessions/"+id+"/cmd",
			"application/json", strings.NewReader(`{"line":"apply parallelize 1"}`))
		if err != nil {
			inflight <- "transport error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- resp.Status + " " + string(b)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := inst.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := inst.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM with in-flight mutation exited non-zero: %v\n%s", err, inst.output.String())
	}
	res := <-inflight
	if strings.Contains(res, "transport error") {
		t.Fatalf("in-flight request dropped during drain: %s", res)
	}
	if !strings.HasPrefix(res, "200") {
		t.Fatalf("in-flight mutation not served before drain: %s", res)
	}

	inst2 := startPedd(t, false, "-datadir", dir, "-fsync", "never")
	if out := inst2.output.String(); !strings.Contains(out, "recovered 1 (truncated 0") {
		t.Fatalf("clean shutdown left a journal needing repair:\n%s", out)
	}
	cl2 := &peddClient{t: t, addr: inst2.addr}
	if got := cl2.cmd(id, "save"); !strings.Contains(got, "doall") {
		t.Errorf("drained mutation lost across clean shutdown:\n%s", got)
	}
}

// TestCrashRecoveryMidApplyPlan: SIGKILL the daemon while it is
// applying an accepted speculative plan. Plan steps are journaled one
// by one through the ordinary mutation path, so whatever instant the
// kernel delivers the kill, the recovered source must sit exactly on
// the plan's hash chain: the base state or the state after some
// acknowledged prefix of steps — never a hybrid.
func TestCrashRecoveryMidApplyPlan(t *testing.T) {
	dir := t.TempDir()
	// The armed delay stretches every journal append so the kill lands
	// inside the multi-step apply window rather than after it.
	inst := startPedd(t, false, "-datadir", dir, "-fsync", "always",
		"-faults", "journal-append=delay:20ms")
	cl := &peddClient{t: t, addr: inst.addr}
	id := cl.open("spec77")

	code, body := cl.post("/v1/sessions/"+id+"/plan", `{}`)
	if code != http.StatusOK {
		t.Fatalf("plan: %d (%s)", code, body)
	}
	var plan struct {
		BaseHash string `json:"base_hash"`
		Plans    []struct {
			Steps []struct {
				Line string `json:"line"`
				Hash string `json:"hash"`
			} `json:"steps"`
		} `json:"plans"`
	}
	if err := json.Unmarshal([]byte(body), &plan); err != nil {
		t.Fatalf("plan response: %v (%s)", err, body)
	}
	if len(plan.Plans) < 2 {
		t.Fatalf("want >= 2 candidate plans, got %d (%s)", len(plan.Plans), body)
	}
	// Every state on the top plan's hash chain is an acceptable place
	// for the crash to land.
	legal := map[string]string{plan.BaseHash: "base"}
	for i, st := range plan.Plans[0].Steps {
		legal[st.Hash] = fmt.Sprintf("after step %d (%s)", i+1, st.Line)
	}

	go func() {
		resp, err := http.Post("http://"+inst.addr+"/v1/sessions/"+id+"/apply-plan",
			"application/json", strings.NewReader(`{"index":1}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := inst.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = inst.cmd.Wait()

	inst2 := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	if out := inst2.output.String(); !strings.Contains(out, "recovered 1") {
		t.Fatalf("restart did not recover the session:\n%s", out)
	}
	cl2 := &peddClient{t: t, addr: inst2.addr}
	got := cl2.cmd(id, "save")
	sum := sha256.Sum256([]byte(got))
	h := hex.EncodeToString(sum[:])
	if where, ok := legal[h]; !ok {
		t.Errorf("recovered source is off the plan's hash chain (hash %s):\n%s", h, got)
	} else {
		t.Logf("crash landed %s", where)
	}
	// The recovered session keeps serving and mutating.
	cl2.cmd(id, "loop 1")
	if out := cl2.cmd(id, "deps"); out == "" {
		t.Error("recovered session serves no dependence answers")
	}
}

// TestRecoveryQuarantineSurvivesDaemonLifecycle: a corrupt journal on
// disk must not stop the daemon from starting; the bad session is
// quarantined and DELETE-able over the API.
func TestRecoveryQuarantineSurvivesDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	inst := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	cl := &peddClient{t: t, addr: inst.addr}
	id := cl.open("direct")
	cl.cmd(id, "loop 1")
	cl.cmd(id, "apply parallelize 1")
	if err := inst.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	_ = inst.cmd.Wait()

	// Corrupt the journal mid-stream: flip a byte in the first record.
	wal := dir + "/" + id + ".wal"
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	data[6] ^= 0x40
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	inst2 := startPedd(t, false, "-datadir", dir, "-fsync", "always")
	if out := inst2.output.String(); !strings.Contains(out, "quarantined 1") {
		t.Fatalf("restart did not report the quarantine:\n%s", out)
	}
	cl2 := &peddClient{t: t, addr: inst2.addr}
	code, body := cl2.get("/v1/sessions/" + id)
	if code != http.StatusOK || !strings.Contains(body, `"state":"failed"`) || !strings.Contains(body, "corrupt") {
		t.Fatalf("quarantined session status: %d %s", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, "http://"+inst2.addr+"/v1/sessions/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE quarantined session: %d", resp.StatusCode)
	}
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Errorf("corrupt wal still on disk after DELETE: %v", err)
	}
}
