// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_pedd.json the repo commits alongside the
// code (scripts/genbench.sh drives it). Two modes:
//
//	go test -bench 'X' . | benchjson > BENCH_pedd.json
//	benchjson -check BENCH_pedd.json
//
// The default mode parses benchmark result lines from stdin and
// writes one JSON document to stdout. -check re-reads a committed
// file and fails (exit 1) unless it parses and still contains the
// planner search benchmark — CI runs it so the committed numbers
// cannot silently rot when benchmarks are renamed or dropped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one result line: its name (with any -cpu suffix
// stripped), the iteration count, and every reported metric —
// ns/op plus custom b.ReportMetric units like worlds/s.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the whole BENCH_pedd.json document.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() { os.Exit(run()) }

func run() int {
	check := flag.String("check", "", "validate an existing benchmark JSON file instead of generating one")
	flag.Parse()
	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		fmt.Printf("benchjson: %s ok\n", *check)
		return 0
	}
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

func parse(sc *bufio.Scanner) (*Doc, error) {
	doc := &Doc{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // a benchmark header line without results, or noise
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       trimCPUSuffix(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker go test
// appends to benchmark names, so committed names are machine-stable.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	// Only strip when the dash follows the name/subname, not a -N
	// that is part of a sub-benchmark label like "c16".
	return name[:i]
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s does not parse: %v", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("%s holds no benchmarks", path)
	}
	want := map[string]bool{
		"BenchmarkPlannerSearch":    false,
		"BenchmarkServerThroughput": false,
		"BenchmarkAnalysisCache":    false,
		"BenchmarkEditReanalyze":    false,
		"BenchmarkCompiledVsInterp": false,
	}
	nsPerOp := map[string]float64{}
	for _, b := range doc.Benchmarks {
		if b.Iterations <= 0 {
			return fmt.Errorf("benchmark %s has no iterations", b.Name)
		}
		if len(b.Metrics) == 0 {
			return fmt.Errorf("benchmark %s has no metrics", b.Name)
		}
		nsPerOp[b.Name] = b.Metrics["ns/op"]
		for name := range want {
			if strings.HasPrefix(b.Name, name) {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			return fmt.Errorf("%s is missing %s results — regenerate with scripts/genbench.sh", path, name)
		}
	}
	// The statement-granular reanalysis path exists to make edits
	// interactive: hold the committed numbers to the speedup the design
	// promises over whole-unit reanalysis.
	whole := nsPerOp["BenchmarkEditReanalyze/whole-unit"]
	stmt := nsPerOp["BenchmarkEditReanalyze/stmt"]
	if whole <= 0 || stmt <= 0 {
		return fmt.Errorf("%s lacks ns/op for the BenchmarkEditReanalyze sub-benchmarks", path)
	}
	if ratio := whole / stmt; ratio < 5 {
		return fmt.Errorf("%s: statement-granular reanalysis is only %.1fx faster than whole-unit (want >= 5x) — a regression in the patch path", path, ratio)
	}
	// The compile backend's whole reason to exist is native speed: hold
	// the committed numbers to the compiled-over-interp ratio the design
	// promises, including the per-run process spawn the compiled side pays.
	itp := nsPerOp["BenchmarkCompiledVsInterp/interp"]
	cmp := nsPerOp["BenchmarkCompiledVsInterp/compiled"]
	if itp <= 0 || cmp <= 0 {
		return fmt.Errorf("%s lacks ns/op for the BenchmarkCompiledVsInterp sub-benchmarks", path)
	}
	if ratio := itp / cmp; ratio < 5 {
		return fmt.Errorf("%s: compiled execution is only %.1fx faster than the interpreter (want >= 5x) — a regression in the codegen backend", path, ratio)
	}
	return nil
}
