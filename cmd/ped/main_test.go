package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"parascope/internal/server"
)

// buildPed compiles the ped binary once per test binary run.
func buildPed(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ped")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runPed(t *testing.T, bin string, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = strings.NewReader(stdin)
	var outBuf, errBuf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &outBuf, &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) {
			t.Fatalf("run ped: %v", err)
		}
		code = exitErr.ExitCode()
	}
	return outBuf.String(), errBuf.String(), code
}

// TestExitCodeOnUnreadableFile: a missing input file must exit
// non-zero, not print-and-exit-0.
func TestExitCodeOnUnreadableFile(t *testing.T) {
	bin := buildPed(t)
	_, stderr, code := runPed(t, bin, "", "no-such-file.f")
	if code == 0 {
		t.Fatalf("missing file exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "no-such-file.f") {
		t.Fatalf("stderr %q does not name the file", stderr)
	}
}

// TestExitCodeOnParseError: an unparseable program must exit
// non-zero with the parse diagnostic on stderr.
func TestExitCodeOnParseError(t *testing.T) {
	bin := buildPed(t)
	bad := filepath.Join(t.TempDir(), "bad.f")
	if err := writeFile(bad, "      this is not fortran at all\n"); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runPed(t, bin, "", bad)
	if code == 0 {
		t.Fatal("parse error exited 0")
	}
	if !strings.Contains(stderr, "ped:") {
		t.Fatalf("stderr %q missing diagnostic", stderr)
	}
}

// TestExitCodeOnFailedBatchCommand: in -batch mode a failed command
// (here an analysis-level error: unknown loop) must propagate a
// non-zero exit code.
func TestExitCodeOnFailedBatchCommand(t *testing.T) {
	bin := buildPed(t)
	stdout, _, code := runPed(t, bin, "loop 999\nquit\n", "-batch", "-workload", "direct")
	if code == 0 {
		t.Fatal("failed batch command exited 0")
	}
	if !strings.Contains(stdout, "error:") {
		t.Fatalf("stdout %q missing error report", stdout)
	}
}

// TestExitCodeCleanBatchScript: a successful script still exits 0.
func TestExitCodeCleanBatchScript(t *testing.T) {
	bin := buildPed(t)
	stdout, stderr, code := runPed(t, bin, "loops\nloop 1\ndeps\nquit\n", "-batch", "-workload", "direct")
	if code != 0 {
		t.Fatalf("clean script exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "error:") {
		t.Fatalf("clean script reported errors: %s", stdout)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestRemoteMode drives the ped binary against an in-process pedd:
// the full client → HTTP → session-manager → actor → REPL path.
func TestRemoteMode(t *testing.T) {
	bin := buildPed(t)
	mgr := server.NewManager(server.Config{CacheSize: 8})
	defer mgr.Shutdown()
	ts := httptest.NewServer(server.New(mgr))
	defer ts.Close()

	stdout, stderr, code := runPed(t, bin, "loops\nloop 1\ndeps\nquit\n",
		"-remote", ts.URL, "-batch", "-workload", "direct")
	if code != 0 {
		t.Fatalf("remote script exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "do ") {
		t.Fatalf("remote loops output missing: %s", stdout)
	}
	// Session closed on exit.
	if n := len(mgr.List(context.Background())); n != 0 {
		t.Fatalf("%d sessions leaked after remote ped exit", n)
	}

	// Failing remote command propagates the exit code in batch mode.
	stdout, _, code = runPed(t, bin, "loop 999\nquit\n",
		"-remote", ts.URL, "-batch", "-workload", "direct")
	if code == 0 {
		t.Fatal("failed remote command exited 0")
	}
	if !strings.Contains(stdout, "error:") {
		t.Fatalf("remote error not reported: %s", stdout)
	}
}

// TestRemoteModeSurvivesBackpressure puts a flaky front half in front
// of pedd — every other request is rejected with 429 — and requires
// ped -remote to ride it out invisibly: the client's backoff-and-
// retry policy must absorb the rejections and the script still exits
// 0 with full output.
func TestRemoteModeSurvivesBackpressure(t *testing.T) {
	bin := buildPed(t)
	mgr := server.NewManager(server.Config{CacheSize: 8})
	defer mgr.Shutdown()
	inner := server.New(mgr)
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"daemon busy"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	stdout, stderr, code := runPed(t, bin, "loops\nloop 1\ndeps\nquit\n",
		"-remote", ts.URL, "-batch", "-workload", "direct")
	if code != 0 {
		t.Fatalf("script through 429 bursts exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "do ") {
		t.Fatalf("retried loops output missing: %s", stdout)
	}
	if rejected := n.Load() / 2; rejected == 0 {
		t.Fatal("flaky proxy never rejected a request; test proves nothing")
	}
	if len(mgr.List(context.Background())) != 0 {
		t.Fatal("sessions leaked through the flaky proxy")
	}
}

// TestRemoteRequestIDOnFailure: a failing remote operation must
// surface the request ID end to end — client generates it, the
// daemon echoes it, and ped prints it — so a user's error report can
// be correlated with the daemon's access log.
func TestRemoteRequestIDOnFailure(t *testing.T) {
	bin := buildPed(t)
	mgr := server.NewManager(server.Config{CacheSize: 8})
	defer mgr.Shutdown()
	ts := httptest.NewServer(server.New(mgr))
	defer ts.Close()

	_, stderr, code := runPed(t, bin, "",
		"-remote", ts.URL, "-batch", "-workload", "no-such-workload")
	if code == 0 {
		t.Fatal("open of unknown workload exited 0")
	}
	if !strings.Contains(stderr, "no-such-workload") {
		t.Fatalf("stderr does not name the workload: %s", stderr)
	}
	if !regexp.MustCompile(`\[req [0-9a-f]{16}\]`).MatchString(stderr) {
		t.Fatalf("stderr carries no request ID: %s", stderr)
	}
}
