// Command ped is the text-mode ParaScope Editor: it opens a Fortran
// source file (or one of the built-in workload programs with
// -workload), runs the full analysis, and accepts the interactive
// commands documented by `help` — selecting loops, browsing and
// marking dependences, asserting variable values, applying power-
// steering transformations, editing, and executing the program on
// the parallel interpreter.
//
// With -remote, ped becomes a thin client of a pedd daemon: the
// session lives server-side and every command travels over the
// HTTP/JSON API, so many editors share one analysis service and its
// content-hash cache.
//
// In -batch mode, any failed command makes ped exit non-zero, so
// scripted sessions can gate on analysis results.
//
// Usage:
//
//	ped file.f
//	ped -workload spec77
//	echo 'auto' | ped -workload pneoss -batch
//	ped -remote http://localhost:7473 -workload arc3d
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parascope/internal/core"
	"parascope/internal/repl"
	"parascope/internal/server"
	"parascope/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "open a built-in workload program instead of a file")
	batch := flag.Bool("batch", false, "suppress the prompt (for piped command scripts); failed commands exit non-zero")
	remote := flag.String("remote", "", "drive a pedd daemon at this base URL instead of analyzing locally")
	timeout := flag.Duration("timeout", 0, "per-request timeout in -remote mode (0 = client default)")
	flag.Parse()

	if *remote != "" {
		os.Exit(runRemote(*remote, *workload, *batch, *timeout))
	}

	var (
		session *core.Session
		err     error
	)
	switch {
	case *workload != "":
		w := workloads.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ped: unknown workload %q; available:\n", *workload)
			for _, x := range workloads.All() {
				fmt.Fprintf(os.Stderr, "  %s — %s\n", x.Name, x.Description)
			}
			os.Exit(2)
		}
		session, err = w.Session()
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			session, err = core.Open(flag.Arg(0), string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ped [-workload name] [-remote url] [file.f]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ped: %v\n", err)
		os.Exit(1)
	}

	r := repl.New(session, os.Stdout)
	if !*batch {
		fmt.Printf("ParaScope Editor — %s (%d units); type help\n",
			session.File.Path, len(session.File.Units))
	}
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "ped: %v\n", err)
		os.Exit(1)
	}
	if *batch && r.Errors > 0 {
		os.Exit(1)
	}
}

// runRemote drives a pedd daemon: open a server-side session, forward
// every stdin line to it, print what comes back. Returns the exit
// code (non-zero in batch mode when any command failed). The client's
// default resilience policy is in effect: per-request timeouts, and
// transparent backoff-and-retry across the daemon's 429/503
// backpressure rejections.
func runRemote(base, workload string, batch bool, timeout time.Duration) int {
	ctx := context.Background()
	client := server.NewClient(base)
	client.Timeout = timeout
	req := server.OpenRequest{Workload: workload}
	if workload == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ped -remote url [-workload name] [file.f]")
			return 2
		}
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "ped: %v\n", err)
			return 1
		}
		req.Path, req.Source = flag.Arg(0), string(src)
	}
	open, err := client.Open(ctx, req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ped: open: %v\n", err)
		return 1
	}
	defer func() { _ = client.CloseSession(ctx, open.ID) }()
	if !batch {
		cached := ""
		if open.Cached {
			cached = ", cache hit"
		}
		fmt.Printf("ParaScope Editor — %s (%d units, remote %s%s); type help\n",
			open.Path, len(open.Units), base, cached)
	}
	errors := 0
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		// The run verb goes through the structured execution endpoint
		// rather than the generic command line: it carries the backend
		// choice and returns timing, and its errors (a declined
		// program, a disabled backend's 501) must fail the invocation.
		if fields := strings.Fields(line); len(fields) > 0 && fields[0] == "run" {
			req, perr := core.ParseExecRequest(fields[1:])
			if perr != nil {
				errors++
				fmt.Printf("error: %v\n", perr)
				continue
			}
			resp, err := client.Run(ctx, open.ID, server.RunRequest{
				Backend: req.Backend, Workers: req.Workers,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "ped: run: %v\n", err)
				return 1
			}
			fmt.Print(resp.Output)
			if resp.Backend == core.BackendCompile {
				fmt.Printf("[compiled: %dµs]\n", resp.WallMicros)
			}
			continue
		}
		resp, err := client.Cmd(ctx, open.ID, line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ped: %v\n", err)
			return 1
		}
		fmt.Print(resp.Output)
		if resp.Err != "" {
			errors++
			fmt.Printf("error: %s\n", resp.Err)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ped: %v\n", err)
		return 1
	}
	if batch && errors > 0 {
		return 1
	}
	return 0
}
