// Command ped is the text-mode ParaScope Editor: it opens a Fortran
// source file (or one of the built-in workload programs with
// -workload), runs the full analysis, and accepts the interactive
// commands documented by `help` — selecting loops, browsing and
// marking dependences, asserting variable values, applying power-
// steering transformations, editing, and executing the program on
// the parallel interpreter.
//
// Usage:
//
//	ped file.f
//	ped -workload spec77
//	echo 'auto' | ped -workload pneoss -batch
package main

import (
	"flag"
	"fmt"
	"os"

	"parascope/internal/core"
	"parascope/internal/repl"
	"parascope/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "open a built-in workload program instead of a file")
	batch := flag.Bool("batch", false, "suppress the prompt (for piped command scripts)")
	flag.Parse()

	var (
		session *core.Session
		err     error
	)
	switch {
	case *workload != "":
		w := workloads.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "ped: unknown workload %q; available:\n", *workload)
			for _, x := range workloads.All() {
				fmt.Fprintf(os.Stderr, "  %s — %s\n", x.Name, x.Description)
			}
			os.Exit(2)
		}
		session, err = w.Session()
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			session, err = core.Open(flag.Arg(0), string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: ped [-workload name] [file.f]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ped: %v\n", err)
		os.Exit(1)
	}

	r := repl.New(session, os.Stdout)
	if !*batch {
		fmt.Printf("ParaScope Editor — %s (%d units); type help\n",
			session.File.Path, len(session.File.Units))
	}
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "ped: %v\n", err)
		os.Exit(1)
	}
}
