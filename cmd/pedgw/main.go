// Command pedgw is the pedd cluster gateway: a stateless HTTP proxy
// that consistent-hashes session IDs across a fleet of pedd backends,
// so clients talk to one address while sessions spread over many
// nodes. It probes each backend's /readyz, keeps only up-and-accepting
// nodes on the hash ring, trips a per-backend circuit breaker on
// transport failures, and drives zero-loss session migration: when the
// ring changes (a node joins, a SIGHUP reload) sessions move to their
// new owners via the nodes' journal-shipping migrate endpoint, and
// when a node dies with shared storage configured, the gateway adopts
// its sessions from the journals it left behind.
//
// Usage:
//
//	pedgw -backends http://127.0.0.1:7473,http://127.0.0.1:7483
//	pedgw -addr :7470 -backends @/etc/pedgw/backends.conf
//
// Each -backends entry is addr[|opsaddr[|datadir]]: the serving URL,
// the ops URL health probes hit (falls back to the serving URL), and
// the node's journal directory as seen from the gateway — required
// only for failover from a dead node. @path reads entries from a file
// (one per line, # comments); SIGHUP re-reads it and rebalances, so
// fleets scale without restarting the gateway. SIGTERM drains: /readyz
// flips to 503, new requests get 503 + Retry-After, in-flight ones
// complete, then the process exits 0.
//
// The ops listener (-opsaddr) serves the pedgw_ metric families at
// /metrics and pprof under /debug/pprof/, mirroring pedd's.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parascope/internal/cluster"
	"parascope/internal/faultpoint"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":7470", "listen address")
	opsAddr := flag.String("opsaddr", "", "ops listen address for GET /metrics and /debug/pprof/ (empty = disabled)")
	backendsSpec := flag.String("backends", "", "comma-separated backend entries addr[|opsaddr[|datadir]], or @file (required)")
	replicas := flag.Int("replicas", 0, "virtual nodes per backend on the hash ring (0 = 64)")
	probeInterval := flag.Duration("probeinterval", cluster.DefaultProbeInterval, "how often each backend's /readyz is probed")
	probeTimeout := flag.Duration("probetimeout", cluster.DefaultProbeTimeout, "health probe timeout")
	upAfter := flag.Int("upafter", cluster.DefaultUpAfter, "consecutive good probes before a backend joins the ring")
	downAfter := flag.Int("downafter", cluster.DefaultDownAfter, "consecutive failed probes before a backend leaves the ring")
	breakerFails := flag.Int("breakerfails", 0, "consecutive transport failures that trip a backend's circuit breaker (0 = 3)")
	breakerCooldown := flag.Duration("breakercooldown", 0, "how long a tripped breaker stays open before a half-open probe (0 = 2s)")
	proxyTimeout := flag.Duration("proxytimeout", cluster.DefaultProxyTimeout, "per-proxied-request deadline")
	proxyRetries := flag.Int("proxyretries", cluster.DefaultProxyRetries, "transport-failure retries for idempotent proxied requests (negative disables)")
	migrateTimeout := flag.Duration("migratetimeout", cluster.DefaultMigrateTimeout, "deadline per rebalance/failover migration")
	maxBody := flag.Int64("maxbody", 0, "proxied request body cap in bytes (0 = 1 MiB)")
	drainGrace := flag.Duration("draingrace", 500*time.Millisecond, "how long to answer 503 before closing the listener on SIGTERM (lets load balancers see /readyz flip)")
	accessLog := flag.Bool("accesslog", true, "write one structured log line per request to stderr")
	faults := flag.String("faults", "", "chaos testing: arm fault injections, e.g. migrate-stream=err")
	flag.Parse()

	if err := faultpoint.ArmSpec(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "pedgw: %v\n", err)
		return 2
	}
	if *faults != "" {
		log.Printf("pedgw: CHAOS: faults armed: %s", *faults)
	}

	if *backendsSpec == "" {
		fmt.Fprintln(os.Stderr, "pedgw: -backends is required")
		return 2
	}
	backends, err := cluster.ParseBackends(*backendsSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedgw: %v\n", err)
		return 2
	}

	cfg := cluster.Config{
		Backends:         backends,
		Replicas:         *replicas,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		UpAfter:          *upAfter,
		DownAfter:        *downAfter,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCooldown,
		ProxyTimeout:     *proxyTimeout,
		ProxyRetries:     *proxyRetries,
		MigrateTimeout:   *migrateTimeout,
		MaxBodyBytes:     *maxBody,
	}
	if *accessLog {
		cfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	gw := cluster.NewGateway(cfg)

	srv := &http.Server{
		Handler:           gw,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedgw: %v\n", err)
		return 1
	}
	var opsSrv *http.Server
	var opsLn net.Listener
	if *opsAddr != "" {
		opsLn, err = net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pedgw: ops: %v\n", err)
			_ = ln.Close()
			return 1
		}
		opsSrv = &http.Server{
			Handler:           gw.OpsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
	}
	log.Printf("pedgw: listening on %s (%d backends)", ln.Addr(), len(backends))
	if opsSrv != nil {
		log.Printf("pedgw: ops listening on %s (/metrics, /debug/pprof/)", opsLn.Addr())
		go func() {
			if err := opsSrv.Serve(opsLn); err != nil && err != http.ErrServerClosed {
				log.Printf("pedgw: ops: %v", err)
			}
		}()
	}

	gw.Start()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	for {
		select {
		case err := <-errCh:
			fmt.Fprintf(os.Stderr, "pedgw: %v\n", err)
			return 1
		case <-hup:
			// Re-parse the spec (an @file is re-read) and rebalance.
			next, err := cluster.ParseBackends(*backendsSpec)
			if err != nil {
				log.Printf("pedgw: SIGHUP: %v (keeping current backends)", err)
				continue
			}
			gw.Reload(next)
		case <-ctx.Done():
			log.Printf("pedgw: shutting down")
			// Refuse new work first, then keep the listener up for the
			// grace window: clients and load balancers see 503 +
			// Retry-After (and /readyz flip) instead of a connection
			// reset, while in-flight requests keep running.
			gw.SetDraining(true)
			time.Sleep(*drainGrace)
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			code := 0
			if err := srv.Shutdown(shutCtx); err != nil {
				log.Printf("pedgw: shutdown: drain incomplete: %v", err)
				code = 1
			}
			if opsSrv != nil {
				_ = opsSrv.Close()
			}
			gw.Stop()
			return code
		}
	}
}
