package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The exec harness builds pedd and pedgw once per test run and drives
// them as real processes: real listeners, real signals, real kill -9.
var (
	binDir    string
	buildOnce sync.Once
	buildErr  error
)

func TestMain(m *testing.M) {
	var err error
	binDir, err = os.MkdirTemp("", "pedgw-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

// binaries compiles pedd and pedgw (once) and returns their paths.
func binaries(t *testing.T) (pedd, pedgw string) {
	t.Helper()
	buildOnce.Do(func() {
		for _, name := range []string{"pedd", "pedgw"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, name), "parascope/cmd/"+name)
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(binDir, "pedd"), filepath.Join(binDir, "pedgw")
}

// proc is one running daemon (pedd or pedgw) on ephemeral ports.
type proc struct {
	cmd     *exec.Cmd
	addr    string
	opsAddr string
	output  *bytes.Buffer
	mu      sync.Mutex
}

func (p *proc) log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.output.String()
}

func (p *proc) appendLine(line string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintln(p.output, line)
}

// startProc launches bin with args and scans its stderr until the
// "<name>: listening on" line (and the ops line) reports the real
// kernel-assigned ports.
func startProc(t *testing.T, bin, name string, withOps bool, args ...string) *proc {
	t.Helper()
	listenRe := regexp.MustCompile(name + `: listening on (\S+)`)
	opsRe := regexp.MustCompile(name + `: ops listening on (\S+)`)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, output: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	need := 1
	if withOps {
		need = 2
	}
	for need > 0 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("%s exited before listening:\n%s", name, p.log())
			}
			p.appendLine(line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				p.addr = m[1]
				need--
			} else if m := opsRe.FindStringSubmatch(line); m != nil {
				p.opsAddr = m[1]
				need--
			}
		case <-deadline:
			t.Fatalf("%s did not report listening in time:\n%s", name, p.log())
		}
	}
	go func() {
		for line := range lines {
			p.appendLine(line)
		}
	}()
	return p
}

// TestPedgwRequiresBackends: starting without -backends is a usage
// error (exit 2), reported before any listener opens.
func TestPedgwRequiresBackends(t *testing.T) {
	_, pedgw := binaries(t)
	out, err := exec.Command(pedgw, "-addr", "127.0.0.1:0").CombinedOutput()
	var exitErr *exec.ExitError
	if err == nil || !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("pedgw without -backends: err=%v, want exit 2\noutput: %s", err, out)
	}
	if !strings.Contains(string(out), "-backends is required") {
		t.Errorf("usage error not reported: %s", out)
	}
	if strings.Contains(string(out), "listening on") {
		t.Errorf("pedgw claimed to listen despite a usage error:\n%s", out)
	}
}

// TestPedgwRejectsBadBackendSpec: a malformed spec is refused at
// startup, not discovered in production when the first probe fires.
func TestPedgwRejectsBadBackendSpec(t *testing.T) {
	_, pedgw := binaries(t)
	out, err := exec.Command(pedgw, "-backends", "ftp://nope").CombinedOutput()
	var exitErr *exec.ExitError
	if err == nil || !errors.As(err, &exitErr) || exitErr.ExitCode() != 2 {
		t.Fatalf("pedgw with bad spec: err=%v, want exit 2\noutput: %s", err, out)
	}
	if !strings.Contains(string(out), "http or https") {
		t.Errorf("spec error not explained: %s", out)
	}
}

// TestPedgwSIGTERMDrain pins the drain contract end to end with real
// processes and real signals: an in-flight mutation (stretched by a
// journal-append fault on the backend) completes with 200, requests
// arriving during the grace window get 503 + Retry-After instead of a
// connection reset, and the gateway exits 0.
func TestPedgwSIGTERMDrain(t *testing.T) {
	pedd, pedgw := binaries(t)
	dir := t.TempDir()
	node := startProc(t, pedd, "pedd", false,
		"-addr", "127.0.0.1:0", "-accesslog=false",
		"-datadir", dir, "-fsync", "always",
		"-faults", "journal-append=delay:300ms")
	gw := startProc(t, pedgw, "pedgw", false,
		"-addr", "127.0.0.1:0", "-accesslog=false",
		"-backends", "http://"+node.addr,
		"-probeinterval", "25ms", "-upafter", "1",
		"-draingrace", "1s")
	waitReadyz(t, "http://"+gw.addr)

	id := openSession(t, "http://"+gw.addr, "")
	mustPost(t, "http://"+gw.addr+"/v1/sessions/"+id+"/cmd", `{"line":"loop 1"}`)

	// Launch a mutation that will sit inside the armed 300ms journal
	// delay when SIGTERM lands.
	inflight := make(chan string, 1)
	go func() {
		resp, err := http.Post("http://"+gw.addr+"/v1/sessions/"+id+"/cmd",
			"application/json", strings.NewReader(`{"line":"apply parallelize 1"}`))
		if err != nil {
			inflight <- "transport error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- resp.Status + " " + string(b)
	}()
	time.Sleep(100 * time.Millisecond) // let the mutation reach the backend
	if err := gw.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// During the grace window the listener is still up and refusing new
	// work politely.
	time.Sleep(100 * time.Millisecond)
	resp, err := http.Post("http://"+gw.addr+"/v1/sessions", "application/json",
		strings.NewReader(`{"workload":"direct"}`))
	if err != nil {
		t.Fatalf("request during drain grace got a connection error, want 503: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}
	rresp, err := http.Get("http://" + gw.addr + "/readyz")
	if err != nil {
		t.Fatalf("/readyz during drain: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain: %d, want 503", rresp.StatusCode)
	}

	if err := gw.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM with in-flight mutation exited non-zero: %v\n%s", err, gw.log())
	}
	res := <-inflight
	if !strings.HasPrefix(res, "200") {
		t.Fatalf("in-flight mutation not completed before drain: %s", res)
	}
}
