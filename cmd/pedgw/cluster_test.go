// Cluster harness: pedgw plus a fleet of pedd processes, driven over
// real sockets with real signals. These tests are the PR's proof
// obligations: kill -9 a backend mid-mutation and every acknowledged
// mutation survives byte-identically; SIGHUP scale-out rebalances live
// sessions onto the new node; a torn migration stream leaves the
// source authoritative.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// waitReadyz polls base/readyz until it answers 200.
func waitReadyz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s/readyz never answered 200", base)
}

// openSession opens a "direct" workload session (id "" = minted).
func openSession(t *testing.T, base, id string) string {
	t.Helper()
	body := `{"workload":"direct"}`
	if id != "" {
		body = fmt.Sprintf(`{"workload":"direct","id":%q}`, id)
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, raw)
	}
	var got struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &got); err != nil || got.ID == "" {
		t.Fatalf("open response: %v (%s)", err, raw)
	}
	return got.ID
}

func mustPost(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

// cmdLine runs one session command, returning its output or an error
// for any non-200 answer (the caller decides whether that is fatal).
func cmdLine(base, id, line string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions/"+id+"/cmd", "application/json",
		strings.NewReader(fmt.Sprintf(`{"line":%q}`, line)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cmd %q on %s: %d %s", line, id, resp.StatusCode, raw)
	}
	var got struct {
		Output string `json:"output"`
		Err    string `json:"error"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		return "", err
	}
	if got.Err != "" {
		return "", fmt.Errorf("cmd %q on %s: %s", line, id, got.Err)
	}
	return got.Output, nil
}

func mustCmd(t *testing.T, base, id, line string) string {
	t.Helper()
	out, err := cmdLine(base, id, line)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// listIDs returns the session IDs a node (or the gateway) reports.
func listIDs(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions")
	if err != nil {
		t.Fatalf("list %s: %v", base, err)
	}
	defer resp.Body.Close()
	var infos []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("list %s: %v", base, err)
	}
	ids := make([]string, len(infos))
	for i, info := range infos {
		ids[i] = info.ID
	}
	return ids
}

// metricValue scrapes one un-labeled numeric series from an ops
// listener ( -1 when the series is absent).
func metricValue(t *testing.T, opsBase, name string) float64 {
	t.Helper()
	resp, err := http.Get(opsBase + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", opsBase, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	m := regexp.MustCompile(`(?m)^` + name + ` (\S+)$`).FindStringSubmatch(string(raw))
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %s: unparsable value %q", name, m[1])
	}
	return v
}

// startNode launches one durable pedd backend.
func startNode(t *testing.T, pedd, dir string, extra ...string) *proc {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-accesslog=false",
		"-datadir", dir, "-fsync", "always",
	}, extra...)
	return startProc(t, pedd, "pedd", false, args...)
}

// TestClusterKill9Failover is the tentpole proof. Three durable pedd
// backends behind one gateway; sessions opened and mutated through the
// gateway; then kill -9 lands on a backend while racing mutations are
// in flight. The gateway must detect the death, adopt the dead node's
// sessions from its journals onto surviving ring owners, and serve
// every session again — where each session's state is exactly one of
// its acknowledged states: the pre-undo save if the racing undo never
// committed, the post-undo save if it was acknowledged, never a hybrid
// and never a loss.
func TestClusterKill9Failover(t *testing.T) {
	pedd, pedgw := binaries(t)
	nodes := make([]*proc, 3)
	dirs := make([]string, 3)
	var specs []string
	for i := range nodes {
		dirs[i] = t.TempDir()
		nodes[i] = startNode(t, pedd, dirs[i])
		// addr||datadir: probes fall back to the serving port's /readyz;
		// the datadir is what failover adopts journals from.
		specs = append(specs, "http://"+nodes[i].addr+"||"+dirs[i])
	}
	gw := startProc(t, pedgw, "pedgw", true,
		"-addr", "127.0.0.1:0", "-opsaddr", "127.0.0.1:0", "-accesslog=false",
		"-backends", strings.Join(specs, ","),
		"-probeinterval", "25ms", "-upafter", "1", "-downafter", "2")
	base := "http://" + gw.addr
	ops := "http://" + gw.opsAddr
	waitReadyz(t, base)

	// Open and mutate sessions through the gateway; record both
	// acknowledged states each could legally end in.
	const n = 6
	baseline := map[string]string{} // pre-parallelize (state after an undo commits)
	want := map[string]string{}     // post-parallelize (state if the undo never lands)
	var ids []string
	for i := 0; i < n; i++ {
		id := openSession(t, base, "")
		mustCmd(t, base, id, "loop 1")
		baseline[id] = mustCmd(t, base, id, "save")
		mustCmd(t, base, id, "apply parallelize 1")
		out := mustCmd(t, base, id, "save")
		if !strings.Contains(out, "doall") {
			t.Fatalf("parallelize not acknowledged for %s:\n%s", id, out)
		}
		want[id] = out
		ids = append(ids, id)
	}

	// Find the victim: a backend actually holding sessions.
	victim := -1
	for i, node := range nodes {
		if len(listIDs(t, "http://"+node.addr)) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no backend holds sessions")
	}
	victimIDs := listIDs(t, "http://"+nodes[victim].addr)
	t.Logf("killing backend %s holding %d of %d sessions", nodes[victim].addr, len(victimIDs), n)

	// Race one undo per session against the kill.
	acked := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			_, err := cmdLine(base, id, "undo")
			if err == nil {
				mu.Lock()
				acked[id] = true
				mu.Unlock()
			}
		}(id)
	}
	time.Sleep(10 * time.Millisecond)
	if err := nodes[victim].cmd.Process.Kill(); err != nil { // SIGKILL, no cleanup
		t.Fatal(err)
	}
	_ = nodes[victim].cmd.Wait()
	wg.Wait()

	// Every session must come back through the same gateway address,
	// in exactly one of its acknowledged states.
	for _, id := range ids {
		var got string
		var err error
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if got, err = cmdLine(base, id, "save"); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("session %s never served after failover: %v\ngateway log:\n%s", id, err, gw.log())
		}
		switch {
		case acked[id] && got != baseline[id]:
			t.Errorf("session %s: undo was acknowledged but state is not the post-undo save:\n%s", id, got)
		case !acked[id] && got != want[id] && got != baseline[id]:
			t.Errorf("session %s: state is neither acknowledged save:\n%s", id, got)
		}
	}

	// The adoption is visible: counters on the gateway's ops listener,
	// retired journals plus tombstones in the dead node's datadir.
	if v := metricValue(t, ops, "pedgw_failover_sessions_total"); v < float64(len(victimIDs)) {
		t.Errorf("pedgw_failover_sessions_total = %v, want >= %d", v, len(victimIDs))
	}
	for _, id := range victimIDs {
		if _, err := os.Stat(filepath.Join(dirs[victim], id+".wal.migrated")); err != nil {
			t.Errorf("journal for %s not retired after adoption: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(dirs[victim], id+".moved")); err != nil {
			t.Errorf("no tombstone for %s in the dead node's datadir: %v", id, err)
		}
	}

	// And the sessions are still writable on their new homes.
	for _, id := range victimIDs {
		if _, err := cmdLine(base, id, "loop 1"); err != nil {
			t.Errorf("adopted session %s is not writable: %v", id, err)
		}
	}
}

// TestClusterSIGHUPScaleOut: adding a backend to an @file spec and
// SIGHUPing the gateway must migrate live, mutated sessions onto the
// new node — with their state byte-identical through the move.
func TestClusterSIGHUPScaleOut(t *testing.T) {
	pedd, pedgw := binaries(t)
	dirA := t.TempDir()
	nodeA := startNode(t, pedd, dirA)
	conf := filepath.Join(t.TempDir(), "backends.conf")
	writeConf := func(lines ...string) {
		t.Helper()
		if err := os.WriteFile(conf, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeConf("# pedgw fleet", "http://"+nodeA.addr+"||"+dirA)

	gw := startProc(t, pedgw, "pedgw", false,
		"-addr", "127.0.0.1:0", "-accesslog=false",
		"-backends", "@"+conf,
		"-probeinterval", "25ms", "-upafter", "1", "-downafter", "2")
	base := "http://" + gw.addr
	waitReadyz(t, base)

	want := map[string]string{}
	for i := 0; i < 10; i++ {
		id := openSession(t, base, "")
		mustCmd(t, base, id, "loop 1")
		mustCmd(t, base, id, "apply parallelize 1")
		want[id] = mustCmd(t, base, id, "save")
	}

	dirB := t.TempDir()
	nodeB := startNode(t, pedd, dirB)
	writeConf("http://"+nodeA.addr+"||"+dirA, "http://"+nodeB.addr+"||"+dirB)
	if err := gw.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// Rebalance must move the sessions the 2-node ring assigns to B.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && len(listIDs(t, "http://"+nodeB.addr)) == 0 {
		time.Sleep(50 * time.Millisecond)
	}
	moved := listIDs(t, "http://"+nodeB.addr)
	if len(moved) == 0 {
		t.Fatalf("SIGHUP scale-out moved nothing onto the new backend\ngateway log:\n%s", gw.log())
	}
	t.Logf("scale-out moved %d of %d sessions", len(moved), len(want))

	// Every session — moved or not — serves its exact pre-move state
	// through the gateway.
	for id, out := range want {
		deadline := time.Now().Add(15 * time.Second)
		for {
			got, err := cmdLine(base, id, "save")
			if err == nil && got == out {
				break
			}
			if !time.Now().Before(deadline) {
				t.Fatalf("session %s state wrong after scale-out: err=%v got:\n%s", id, err, got)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if !strings.Contains(gw.log(), "reloaded backends: 2 configured") {
		t.Errorf("gateway log does not record the reload:\n%s", gw.log())
	}
}

// TestClusterTornMigrationChaos: with the migrate-stream faultpoint
// armed on the source node, every rebalance migration ships a torn
// journal stream. The target must refuse it and the source must stay
// authoritative: no session moves, no state changes, and the failure
// is counted — the cluster degrades loudly, never silently forks.
func TestClusterTornMigrationChaos(t *testing.T) {
	pedd, pedgw := binaries(t)
	dirA := t.TempDir()
	nodeA := startNode(t, pedd, dirA, "-faults", "migrate-stream=err")
	conf := filepath.Join(t.TempDir(), "backends.conf")
	if err := os.WriteFile(conf, []byte("http://"+nodeA.addr+"||"+dirA+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	gw := startProc(t, pedgw, "pedgw", true,
		"-addr", "127.0.0.1:0", "-opsaddr", "127.0.0.1:0", "-accesslog=false",
		"-backends", "@"+conf,
		"-probeinterval", "25ms", "-upafter", "1", "-downafter", "2")
	base := "http://" + gw.addr
	ops := "http://" + gw.opsAddr
	waitReadyz(t, base)

	want := map[string]string{}
	for i := 0; i < 10; i++ {
		id := openSession(t, base, "")
		mustCmd(t, base, id, "loop 1")
		mustCmd(t, base, id, "apply parallelize 1")
		want[id] = mustCmd(t, base, id, "save")
	}

	// Scale out; every migration to the new node will tear mid-stream.
	dirB := t.TempDir()
	nodeB := startNode(t, pedd, dirB)
	if err := os.WriteFile(conf, []byte(strings.Join([]string{
		"http://" + nodeA.addr + "||" + dirA,
		"http://" + nodeB.addr + "||" + dirB,
	}, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gw.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// The failed migrations must be counted (proving some were owed to
	// the new node and attempted)...
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) && metricValue(t, ops, "pedgw_migrations_failed_total") < 1 {
		time.Sleep(50 * time.Millisecond)
	}
	if v := metricValue(t, ops, "pedgw_migrations_failed_total"); v < 1 {
		t.Fatalf("pedgw_migrations_failed_total = %v, want >= 1\ngateway log:\n%s", v, gw.log())
	}
	// ...the target must have adopted nothing...
	if got := listIDs(t, "http://"+nodeB.addr); len(got) != 0 {
		t.Fatalf("torn migrations still landed %d sessions on the target: %v", len(got), got)
	}
	// ...and the source stays authoritative: every session serves its
	// exact acknowledged state through the gateway and remains mutable.
	for id, out := range want {
		got, err := cmdLine(base, id, "save")
		if err != nil {
			t.Fatalf("session %s unreachable after failed migration: %v", id, err)
		}
		if got != out {
			t.Errorf("session %s state changed across a failed migration:\nwant %s\ngot  %s", id, out, got)
		}
		if _, err := cmdLine(base, id, "loop 1"); err != nil {
			t.Errorf("session %s not mutable after failed migration: %v", id, err)
		}
	}
}
