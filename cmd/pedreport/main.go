// Command pedreport regenerates every table and figure of the
// reproduced evaluation: the program suite (Table 1), the scripted
// user sessions (Table 2), the analysis-ablation matrix (Table 3),
// the Ped window (Figure 1), the power-steering transcript, the
// dependence-test effectiveness breakdown, the measured parallel
// speedups, and the incremental-reanalysis timings.
//
// Usage:
//
//	pedreport            # everything
//	pedreport -only t3   # one experiment (t1 t2 t3 f1 f2 e5 e6 e7)
package main

import (
	"flag"
	"fmt"
	"os"

	"parascope/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment: t1 t2 t3 f1 f2 e5 e6 e7")
	repeats := flag.Int("repeats", 3, "timing repetitions for the speedup experiment")
	flag.Parse()

	type exp struct {
		id string
		fn func() (string, error)
	}
	// The speedup experiment reports *simulated* critical-path
	// cycles, which do not depend on the host's core count, so the
	// sweep always covers the paper's 8-processor configuration.
	workers := []int{1, 2, 4, 8}
	list := []exp{
		{"t1", experiments.Table1},
		{"t2", experiments.Table2},
		{"t3", experiments.Table3},
		{"f1", experiments.Figure1},
		{"f2", experiments.PowerSteering},
		{"e5", experiments.DepTestStats},
		{"e6", func() (string, error) { return experiments.SpeedupTable(workers, *repeats) }},
		{"e7", func() (string, error) { return experiments.IncrementalTable([]int{5, 20, 60}) }},
	}
	failed := false
	for _, e := range list {
		if *only != "" && e.id != *only {
			continue
		}
		out, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pedreport %s: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Printf("========== %s ==========\n%s\n", e.id, out)
	}
	if failed {
		os.Exit(1)
	}
}
