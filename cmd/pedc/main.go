// Command pedc is the ParaScope Fortran→Go compiler driver: it lowers
// a workload (or a .f file) to a self-contained Go main package,
// builds it into the per-user cache keyed by source hash, and runs
// the native binary. The compiled program is byte-identical in output
// to the interpreter; pedc exists so the backend is usable stand-alone
// for inspection (-emit), ahead-of-time builds (-build), and timed
// runs outside an editor session.
//
//	pedc -workload arc3d                     build + run, report timing
//	pedc -workload arc3d -workers 8          parallel DOALL fan-out
//	pedc -workload arc3d -emit               print the generated Go
//	pedc -workload arc3d -o main.go          write the generated Go
//	pedc -workload arc3d -build              build only, print binary path
//	pedc -input "1.5 2" prog.f               compile a file, feed READ data
//	                                         (flags before the file — stdlib
//	                                         flag parsing stops at positionals)
//
// Programs the generator cannot lower exactly are declined with a
// reason and exit status 3 — pedc never approximates semantics. Runs
// killed by the resource governor (wall timeout, output cap, RSS
// watchdog) exit with status 4 so scripts can tell "the program
// misbehaved" from "the toolchain broke".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"parascope/internal/codegen"
	"parascope/internal/execguard"
	"parascope/internal/fortran"
	"parascope/internal/workloads"
)

func main() { os.Exit(run()) }

func run() int {
	workload := flag.String("workload", "", "compile a built-in workload by name")
	emit := flag.Bool("emit", false, "print the generated Go source and exit")
	out := flag.String("o", "", "write the generated Go source to this file and exit")
	buildOnly := flag.Bool("build", false, "build without running; print the cached binary path")
	workers := flag.Int("workers", 1, "DOALL worker goroutines (<=0 means GOMAXPROCS)")
	cache := flag.String("cache", "", "build cache directory (empty = per-user default)")
	inputStr := flag.String("input", "", "whitespace-separated READ input values (overrides workload input)")
	timeout := flag.Duration("timeout", 0, "kill the run after this duration (0 = default 60s, negative = none)")
	maxOut := flag.Int64("maxout", 0, "cap captured stdout bytes (0 = default 8MiB, negative = none)")
	maxRSS := flag.Int64("maxrss", 0, "kill the run past this resident-set size in bytes (0 = default 1GiB, negative = off)")
	flag.Parse()

	var (
		file  *fortran.File
		input []float64
		err   error
	)
	switch {
	case *workload != "":
		w := workloads.ByName(*workload)
		if w == nil {
			fmt.Fprintf(os.Stderr, "pedc: unknown workload %q; available:\n", *workload)
			for _, x := range workloads.All() {
				fmt.Fprintf(os.Stderr, "  %s — %s\n", x.Name, x.Description)
			}
			return 2
		}
		file, err = w.Parse()
		input = w.Input
	case flag.NArg() == 1:
		var src []byte
		if src, err = os.ReadFile(flag.Arg(0)); err == nil {
			file, err = fortran.Parse(flag.Arg(0), string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: pedc [-workload name | file.f] [-emit|-o file|-build] [-workers n] [-input values]")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pedc: %v\n", err)
		return 1
	}
	if *inputStr != "" {
		for _, tok := range strings.Fields(*inputStr) {
			v, perr := strconv.ParseFloat(tok, 64)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "pedc: bad -input value %q\n", tok)
				return 2
			}
			input = append(input, v)
		}
	}

	if *emit || *out != "" {
		src, err := codegen.Generate(file)
		if err != nil {
			return report(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(src), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pedc: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Print(src)
		return 0
	}

	gov := execguard.New(execguard.Config{Limits: execguard.Limits{
		Timeout:     *timeout,
		OutputBytes: *maxOut,
		RSSBytes:    *maxRSS,
	}})
	ctx := context.Background()
	art, err := codegen.Build(ctx, file, *cache, gov)
	if err != nil {
		return report(err)
	}
	if *buildOnly {
		status := "built"
		if art.Cached {
			status = "cached"
		}
		fmt.Printf("%s (%s)\n", art.Bin, status)
		return 0
	}

	res, err := codegen.Run(ctx, art, *workers, input, gov)
	if err != nil {
		return report(err)
	}
	fmt.Print(res.Output)
	fmt.Fprintf(os.Stderr, "pedc: %s in %s (workers=%d)\n", file.Path, res.Wall.Round(time.Microsecond), *workers)
	return 0
}

// report prints a build or run failure; declined programs and
// governor kills get their own exit statuses so scripts can tell
// "cannot lower" (3) and "timed out / blew a resource cap" (4) from
// "broken toolchain" (1).
func report(err error) int {
	fmt.Fprintf(os.Stderr, "pedc: %v\n", err)
	switch {
	case codegen.IsDeclined(err):
		return 3
	case execguard.IsKill(err):
		return 4
	}
	return 1
}
