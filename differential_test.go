// Differential test for incremental reanalysis: after any sequence
// of edits, a session's incrementally maintained analysis must be
// indistinguishable from throwing everything away and reanalyzing the
// saved source from scratch. Runs randomized (seeded) edit sequences
// over the whole workload suite, once with the statement-granular
// patch path enabled and once forced to whole-unit reanalysis.
package parascope

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/workloads"
)

// sessionDepSignature renders every dependence of every unit in a
// sorted, order-insensitive form. Edge IDs and test statistics are
// excluded: the patch path renumbers edges and accumulates stats
// across edits by design.
func sessionDepSignature(s *core.Session) []string {
	var out []string
	for _, u := range s.File.Units {
		st := s.StateOf(u)
		if st == nil || st.Deps == nil {
			continue
		}
		for _, d := range st.Deps.Deps {
			out = append(out, fmt.Sprintf("%s %s %s l%d %s %s #%d->#%d %s",
				u.Name, d.Sym.Name, d.Class, d.Level, d.DirString(), d.Test,
				d.Src.ID(), d.Dst.ID(), d.Mark))
		}
	}
	sort.Strings(out)
	return out
}

// sessionPerfClose compares per-unit perf estimates with a relative
// tolerance; loop lists are compared as sorted time multisets because
// the estimator orders loops by estimated time, which can tie.
func sessionPerfClose(a, b *core.Session) error {
	near := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*(1+math.Abs(x)+math.Abs(y))
	}
	for _, u := range a.File.Units {
		ea := a.StateOf(u).Est
		eb := b.StateOf(b.File.Unit(u.Name)).Est
		if !near(ea.Total, eb.Total) {
			return fmt.Errorf("unit %s: total %g vs %g", u.Name, ea.Total, eb.Total)
		}
		if len(ea.Loops) != len(eb.Loops) {
			return fmt.Errorf("unit %s: %d vs %d loop estimates", u.Name, len(ea.Loops), len(eb.Loops))
		}
		ta := make([]float64, len(ea.Loops))
		tb := make([]float64, len(eb.Loops))
		for i := range ea.Loops {
			ta[i], tb[i] = ea.Loops[i].SeqTime, eb.Loops[i].SeqTime
		}
		sort.Float64s(ta)
		sort.Float64s(tb)
		for i := range ta {
			if !near(ta[i], tb[i]) {
				return fmt.Errorf("unit %s: loop time %g vs %g", u.Name, ta[i], tb[i])
			}
		}
	}
	return nil
}

func expectMatchesScratch(t *testing.T, s *core.Session, context string) {
	t.Helper()
	fresh, err := core.Open(s.File.Path, s.Save())
	if err != nil {
		t.Fatalf("%s: saved source does not reopen: %v", context, err)
	}
	got, want := sessionDepSignature(s), sessionDepSignature(fresh)
	if len(got) != len(want) {
		t.Fatalf("%s: dependence count diverged: incremental %d, scratch %d\nincremental: %v\nscratch: %v",
			context, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: dependence diverged:\nincremental: %s\nscratch:     %s", context, got[i], want[i])
		}
	}
	if err := sessionPerfClose(s, fresh); err != nil {
		t.Fatalf("%s: perf estimate diverged: %v", context, err)
	}
}

// randomAssignEdit applies one randomized 1:1 edit to an assignment
// statement of the current unit: rewrite it unchanged, replace the
// right-hand side with the left-hand side, or grow the right-hand
// side by adding the left-hand side to it. All three keep the program
// well formed; growth is bounded so printed lines stay within the
// fixed-form width.
func randomAssignEdit(t *testing.T, r *rand.Rand, s *core.Session) string {
	t.Helper()
	var cands []fortran.Stmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if _, ok := st.(*fortran.AssignStmt); ok {
			cands = append(cands, st)
		}
		return true
	})
	if len(cands) == 0 {
		return ""
	}
	st := cands[r.Intn(len(cands))]
	text := fortran.StmtText(st)
	i := strings.Index(text, " = ")
	if i < 0 {
		return ""
	}
	lhs, rhs := text[:i], text[i+3:]
	var newText string
	switch r.Intn(3) {
	case 0:
		newText = text
	case 1:
		newText = lhs + " = " + lhs
	default:
		if len(text) > 50 {
			newText = text
		} else {
			newText = lhs + " = " + rhs + " + " + lhs
		}
	}
	if err := s.EditStmt(st.ID(), "      "+newText); err != nil {
		t.Fatalf("edit %q: %v", newText, err)
	}
	return newText
}

// TestIncrementalMatchesScratch is the differential gate on the
// incremental reanalysis path: for every workload, run a seeded
// random edit sequence and after every single edit require the
// session to match a from-scratch analysis of its saved source —
// with the patch fast path enabled, and again forced to whole-unit
// reanalysis.
func TestIncrementalMatchesScratch(t *testing.T) {
	const editsPerWorkload = 10
	for _, mode := range []struct {
		name      string
		wholeUnit bool
	}{
		{"patch", false},
		{"whole-unit", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			patched := 0
			for _, w := range workloads.All() {
				r := rand.New(rand.NewSource(int64(len(w.Name)) * 7919))
				s, err := w.Session()
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				s.WholeUnitOnly = mode.wholeUnit
				for e := 0; e < editsPerWorkload; e++ {
					text := randomAssignEdit(t, r, s)
					if text == "" {
						break
					}
					if s.LastReanalysis.Mode == "patch" {
						patched++
					}
					expectMatchesScratch(t, s, fmt.Sprintf("%s edit %d (%s)", w.Name, e, text))
				}
			}
			if mode.wholeUnit && patched > 0 {
				t.Errorf("WholeUnitOnly sessions took the patch path %d times", patched)
			}
			if !mode.wholeUnit && patched == 0 {
				t.Error("patch-enabled run never exercised the statement-granular path")
			}
		})
	}
}
