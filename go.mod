module parascope

go 1.24
