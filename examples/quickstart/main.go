// Quickstart: open a Fortran program in the ParaScope Editor, run the
// analyses, list the loops with their dependences, and parallelize
// what is safe — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"parascope/internal/core"
	"parascope/internal/interp"
	"parascope/internal/view"
)

const program = `
      program demo
      integer i
      real t, s, a(1000), b(1000)
      do i = 1, 1000
         a(i) = real(i)*0.001
      enddo
      s = 0.0
      do i = 1, 1000
         t = a(i)*a(i)
         b(i) = t + 1.0
         s = s + t
      enddo
      do i = 2, 1000
         a(i) = a(i-1)*0.5
      enddo
      print *, s, b(500), a(1000)
      end
`

func main() {
	// Open a session: parsing, data-flow, dependence and
	// interprocedural analysis all run here.
	s, err := core.Open("demo.f", program)
	if err != nil {
		log.Fatal(err)
	}

	// What did the analyzer find?
	fmt.Println("loops and their carried dependences:")
	for i, l := range s.Loops() {
		if err := s.SelectLoop(i + 1); err != nil {
			log.Fatal(err)
		}
		deps := s.SelectionDeps(core.DepFilter{CarriedOnly: true, HidePrivate: true})
		fmt.Printf("  loop %d (do %s, line %d): %d blocking dependences\n",
			i+1, l.Header().Name, l.Do.Line(), len(deps))
		for _, d := range deps {
			fmt.Printf("      %s\n", d)
		}
	}

	// Parallelize everything that is safe. The recurrence in loop 3
	// stays serial; the private scalar t and the sum reduction s are
	// handled automatically.
	n := s.AutoParallelize()
	fmt.Printf("\nparallelized %d loops:\n\n", n)
	fmt.Println(view.SourcePane(s, view.FilterLoopsOnly))

	// Run the transformed program on the parallel interpreter and
	// compare against sequential execution.
	seq, err := core.Open("demo.f", program)
	if err != nil {
		log.Fatal(err)
	}
	seqOut, err := interp.RunCapture(seq.File, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	parOut, err := interp.RunCapture(s.File, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %s", seqOut)
	fmt.Printf("parallel:   %s", parOut)
	if ok, _ := interp.OutputsEquivalent(seqOut, parOut, 1e-6); ok {
		fmt.Println("outputs match — the parallelization is semantics-preserving")
	} else {
		fmt.Println("OUTPUT MISMATCH")
	}
}
