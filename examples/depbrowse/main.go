// Depbrowse: the dependence-navigation workflow on the arc3d
// workload — browse the dependence pane with view filters, see why
// analysis is blocked (a symbolic subscript term), assert the missing
// fact as the paper's users did, and watch the dependence disappear.
package main

import (
	"fmt"
	"log"

	"parascope/internal/core"
	"parascope/internal/view"
	"parascope/internal/workloads"
	"parascope/internal/xform"
)

func main() {
	w := workloads.ByName("arc3d")
	s, err := w.Session()
	if err != nil {
		log.Fatal(err)
	}

	// Navigate to the filter loop (loop 2: q(j) = q(j+jp)…).
	if err := s.SelectLoop(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== the filter loop before any interaction ==")
	fmt.Print(view.DepPane(s, core.DepFilter{CarriedOnly: true}))
	fmt.Print(view.VarPane(s))

	// The pane shows pending dependences blocked by the symbolic
	// offset jp. Power steering refuses to parallelize:
	do := s.SelectedLoop().Do
	fmt.Printf("\npower steering says: %s\n", s.Check(xform.Parallelize{Do: do}))

	// The user knows jp is the inter-plane stride and is at least the
	// plane size. Assert it:
	fmt.Println("\n== assert jp .ge. 500 ==")
	if err := s.Assert("jp .ge. 500"); err != nil {
		log.Fatal(err)
	}

	// Reanalysis removed the dependences:
	if err := s.SelectLoop(2); err != nil {
		log.Fatal(err)
	}
	fmt.Print(view.DepPane(s, core.DepFilter{CarriedOnly: true}))
	do = s.SelectedLoop().Do
	v, err := s.Transform(xform.Parallelize{Do: do})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallelize: %s\n\n", v)

	fmt.Println("== session transcript ==")
	for _, h := range s.History {
		fmt.Println(" ", h)
	}
}
