// Transform: the power-steering catalog on one loop nest — check and
// apply interchange, strip mining, unrolling, distribution and
// fusion, printing the applicable/safe/profitable verdicts before
// every step, and validating each rewrite by execution.
package main

import (
	"fmt"
	"log"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/xform"
)

const program = `
      program xdemo
      integer i, j
      real a(64,64), b(64), c(64), s
      do j = 1, 64
         do i = 1, 64
            a(j,i) = real(i + j)*0.01
         enddo
      enddo
      do i = 1, 64
         b(i) = 1.0
      enddo
      do i = 1, 64
         c(i) = b(i)*2.0
      enddo
      s = 0.0
      do j = 1, 64
         do i = 1, 64
            s = s + a(j,i)
         enddo
      enddo
      print *, s, c(32)
      end
`

func main() {
	s, err := core.Open("xdemo.f", program)
	if err != nil {
		log.Fatal(err)
	}
	seqOut := mustRun(s, 1)

	step := func(name string, t xform.Transformation) {
		v := s.Check(t)
		fmt.Printf("%-22s %s\n", name+":", v)
		if !v.OK() {
			return
		}
		if _, err := s.Transform(t); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		// Every rewrite must preserve the program's output.
		if out := mustRun(s, 1); out != seqOut {
			log.Fatalf("%s changed program output!\nbefore: %safter: %s", name, seqOut, out)
		}
		fmt.Printf("%-22s output unchanged ✓\n", "")
	}

	// 1. The a(j,i) nest accesses memory column-major-hostile;
	//    interchange fixes the stride.
	nest := s.Loops()[0].Do
	step("interchange", xform.Interchange{Outer: nest})

	// 2. Fuse the two adjacent 1-d loops (b then c reads b).
	var first, second *fortran.DoStmt
	for _, l := range s.Loops() {
		if l.Depth != 1 {
			continue
		}
		if len(l.Do.Body) == 1 {
			if as, ok := l.Do.Body[0].(*fortran.AssignStmt); ok {
				switch as.Lhs.Name {
				case "b":
					first = l.Do
				case "c":
					second = l.Do
				}
			}
		}
	}
	step("fuse b/c loops", xform.Fuse{First: first, Second: second})

	// 3. Strip-mine the fused loop (fusion produced a new DO; find it)
	//    into chunks of 16.
	var fused *fortran.DoStmt
	for _, l := range s.Loops() {
		if l.Depth == 1 && len(l.Do.Body) == 2 {
			fused = l.Do
		}
	}
	step("strip-mine (16)", xform.StripMine{Do: fused, Size: 16})

	// 4. Unroll the initialization nest's inner loop by 4.
	var inner *fortran.DoStmt
	for _, l := range s.Loops() {
		if l.Depth == 2 && l.Parent.Do == nest {
			inner = l.Do
		}
	}
	step("unroll inner (4)", xform.Unroll{Do: inner, Factor: 4})

	// 5. Parallelize what remains parallelizable.
	n := s.AutoParallelize()
	fmt.Printf("\nauto-parallelized %d loops; final program:\n\n%s", n, s.Save())

	parOut := mustRunWorkers(s, 4)
	if ok, why := interp.OutputsEquivalent(seqOut, parOut, 1e-6); !ok {
		log.Fatalf("parallel output differs: %s", why)
	}
	fmt.Println("\nparallel output matches sequential ✓")
}

func mustRun(s *core.Session, workers int) string {
	out, err := interp.RunCapture(s.File, workers, nil)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func mustRunWorkers(s *core.Session, workers int) string { return mustRun(s, workers) }
