// Estimate: performance-estimator-guided navigation — rank the
// procedures and loops of the spec77 workload by predicted cost,
// follow the estimator to the hottest serial loop, parallelize along
// the way, and finally measure real speedup on the parallel
// interpreter.
package main

import (
	"fmt"
	"log"
	"time"

	"parascope/internal/interp"
	"parascope/internal/perf"
	"parascope/internal/workloads"
	"parascope/internal/xform"
)

func main() {
	w := workloads.ByName("spec77")
	s, err := w.Session()
	if err != nil {
		log.Fatal(err)
	}

	// Procedure-level ranking (the "big picture" users asked for).
	est := perf.New(s.File, perf.DefaultParams())
	fmt.Println("procedure ranking (predicted cost per invocation):")
	for i, row := range est.ProcedureRank() {
		fmt.Printf("  %d. %-10s %10.0f\n", i+1, row.Unit.Name, row.Cost)
	}

	// Loop-level ranking inside the main program.
	fmt.Println("\nloop ranking (estimator report):")
	fmt.Print(s.State().Est.Report())

	// Estimator-guided parallelization: repeatedly navigate to the
	// most expensive serial loop and try to parallelize it.
	fmt.Println("\nestimator-guided walk:")
	for {
		l, ok := s.NextByPerformance()
		if !ok {
			break
		}
		v, err := s.Transform(xform.Parallelize{Do: l.Do})
		if err != nil {
			fmt.Printf("  do %s (line %d): left serial (%s)\n",
				l.Header().Name, l.Do.Line(), v)
			// Recurse into children via auto mode and stop walking
			// this loop.
			s.AutoParallelize()
			break
		}
		fmt.Printf("  do %s (line %d): parallelized\n", l.Header().Name, l.Do.Line())
	}

	// Measure the result.
	fmt.Println("\nmeasured execution (parallel interpreter):")
	var t1 time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		if _, err := interp.RunCapture(s.File, workers, w.Input); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		if workers == 1 {
			t1 = el
		}
		fmt.Printf("  %d workers: %10s  (speedup %.2fx)\n",
			workers, el.Round(10*time.Microsecond), t1.Seconds()/el.Seconds())
	}
}
