// Embed: procedure integration ("embedding") across a loop —
// the capability the paper's §5 proposes for the gloop pattern:
// "a solution that combines the granularity of the outer loop with
// the parallelism of the inner loop is to perform loop interchange
// across the procedure boundary". We inline the callee, exposing its
// loop to the enclosing nest, then parallelize the now-visible outer
// loop — and cross-check with the Composition Editor's parameter
// checks first.
package main

import (
	"fmt"
	"log"

	"parascope/internal/core"
	"parascope/internal/fortran"
	"parascope/internal/interp"
	"parascope/internal/view"
	"parascope/internal/xform"
)

const program = `
      program embed
      integer ilat
      real grid(128,64), total
      do ilat = 1, 64
         call column(grid, ilat)
      enddo
      total = 0.0
      do ilat = 1, 64
         total = total + grid(64,ilat)
      enddo
      print *, total
      end
      subroutine column(g, j)
      integer j, k
      real g(128,64), t
      do k = 2, 128
         t = g(k-1,j)*0.5
         g(k,j) = t + real(k + j)*0.01
      enddo
      end
`

func main() {
	s, err := core.Open("embed.f", program)
	if err != nil {
		log.Fatal(err)
	}
	seqOut, err := interp.RunCapture(fortran.MustParse("ref.f", program), 1, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The Composition Editor's cross-procedure checks first — the
	// paper reports these caught real bugs in production codes.
	if ms := s.Prog.CheckComposition(); len(ms) == 0 {
		fmt.Println("composition check: every call agrees with its callee ✓")
	} else {
		for _, m := range ms {
			fmt.Println("composition:", m)
		}
	}

	// The latitude loop: parallel already (sections prove the columns
	// disjoint), but the column recurrence is invisible to any
	// transformation while it hides behind the call.
	fmt.Println("\nbefore embedding:")
	fmt.Print(view.SourcePane(s, view.FilterLoopsOnly))

	// Find and inline the call.
	var call *fortran.CallStmt
	fortran.WalkStmts(s.CurrentUnit().Body, func(st fortran.Stmt) bool {
		if cs, ok := st.(*fortran.CallStmt); ok && cs.Name == "column" {
			call = cs
		}
		return call == nil
	})
	tr := xform.Inline{Call: call}
	fmt.Printf("\ninline call column: %s\n", s.Check(tr))
	if _, err := s.Transform(tr); err != nil {
		log.Fatal(err)
	}

	// The callee's k-recurrence is now a visible inner loop; the
	// outer ilat loop parallelizes over it directly.
	n := s.AutoParallelize()
	fmt.Printf("\nafter embedding (%d loops parallelized):\n", n)
	fmt.Print(view.SourcePane(s, view.FilterLoopsOnly))

	parOut, err := interp.RunCapture(s.File, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	if ok, why := interp.OutputsEquivalent(seqOut, parOut, 1e-6); !ok {
		log.Fatalf("embedding changed semantics: %s", why)
	}
	fmt.Println("\nparallel output matches sequential ✓")
}
